// Unit tests for vbatch/util: RNG determinism and statistics, matrix views,
// flop formulas, size distributions, table/histogram rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/util/matrix_view.hpp"
#include "vbatch/util/rng.hpp"
#include "vbatch/util/table.hpp"
#include "vbatch/util/types.hpp"

namespace {

using namespace vbatch;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(3, 10);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 10);
    saw_lo |= v == 3;
    saw_hi |= v == 10;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, FillSpdIsSymmetricAndDiagonallyDominant) {
  Rng rng(3);
  const int n = 17;
  std::vector<double> a(static_cast<std::size_t>(n * n));
  fill_spd(rng, a.data(), n, n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(i + j * n)],
                       a[static_cast<std::size_t>(j + i * n)]);
    }
    EXPECT_GT(a[static_cast<std::size_t>(j + j * n)], static_cast<double>(n) - 1.0);
  }
}

TEST(MatrixView, ElementAndBlockAccess) {
  std::vector<double> buf(30);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<double>(i);
  MatrixView<double> a(buf.data(), 5, 6, 5);
  EXPECT_DOUBLE_EQ(a(2, 3), 17.0);  // 2 + 3*5
  auto b = a.block(1, 2, 3, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), a(1, 2));
  EXPECT_DOUBLE_EQ(b(2, 1), a(3, 3));
  EXPECT_EQ(b.ld(), 5);
}

TEST(MatrixView, LeadingDimensionRespected) {
  std::vector<float> buf(40, 0.0f);
  MatrixView<float> a(buf.data(), 3, 4, 10);  // ld > rows
  a(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(buf[2 + 3 * 10], 5.0f);
}

TEST(MatrixView, ColSpan) {
  std::vector<double> buf(12);
  MatrixView<double> a(buf.data(), 3, 4, 3);
  auto c = a.col(2);
  EXPECT_EQ(c.size(), 3u);
  c[1] = 9.0;
  EXPECT_DOUBLE_EQ(a(1, 2), 9.0);
}

TEST(Flops, PotrfMatchesClosedForm) {
  // n³/3 + n²/2 + n/6 at n=6: 72 + 18 + 1 = 91.
  EXPECT_DOUBLE_EQ(flops::potrf(6), 91.0);
  EXPECT_DOUBLE_EQ(flops::potrf(1), 1.0);
  EXPECT_DOUBLE_EQ(flops::potrf(0), 0.0);
}

TEST(Flops, GemmSyrkTrsm) {
  EXPECT_DOUBLE_EQ(flops::gemm(3, 4, 5), 120.0);
  EXPECT_DOUBLE_EQ(flops::syrk(4, 3), 4.0 * 5.0 * 3.0);
  EXPECT_DOUBLE_EQ(flops::trsm(4, 3, true), 3.0 * 16.0);
  EXPECT_DOUBLE_EQ(flops::trsm(4, 3, false), 4.0 * 9.0);
}

TEST(Flops, BatchSumsPerMatrixCounts) {
  std::vector<int> sizes{2, 3, 5};
  EXPECT_DOUBLE_EQ(flops::potrf_batch(sizes),
                   flops::potrf(2) + flops::potrf(3) + flops::potrf(5));
}

TEST(Flops, GetrfGeqrfPositiveAndMonotone) {
  EXPECT_GT(flops::getrf(8, 8), flops::getrf(4, 4));
  EXPECT_GT(flops::geqrf(16, 8), flops::geqrf(8, 8));
  EXPECT_GT(flops::geqrf(8, 8), 0.0);
}

TEST(SizeDist, UniformBounds) {
  Rng rng(123);
  auto sizes = uniform_sizes(rng, 2000, 512);
  const auto st = size_stats(sizes);
  EXPECT_GE(st.min, 1);
  EXPECT_LE(st.max, 512);
  EXPECT_NEAR(st.mean, 256.5, 12.0);
  // Uniform stddev = (b-a)/sqrt(12) ≈ 147.5.
  EXPECT_NEAR(st.stddev, 147.5, 10.0);
}

TEST(SizeDist, GaussianCentredAtHalfMax) {
  Rng rng(321);
  auto sizes = gaussian_sizes(rng, 2000, 512);
  const auto st = size_stats(sizes);
  EXPECT_GE(st.min, 1);
  EXPECT_LE(st.max, 512);
  EXPECT_NEAR(st.mean, 256.0, 8.0);
  EXPECT_NEAR(st.stddev, 512.0 / 6.0, 10.0);
}

TEST(SizeDist, GaussianRarelyNearBoundaries) {
  Rng rng(55);
  auto sizes = gaussian_sizes(rng, 2000, 512);
  int near_edges = 0;
  for (int s : sizes)
    if (s < 64 || s > 448) ++near_edges;
  EXPECT_LT(near_edges, 80);  // ~2.4% expected beyond ±2.25σ; allow 4%
}

TEST(SizeDist, DispatchMatchesEnum) {
  Rng r1(7), r2(7);
  EXPECT_EQ(make_sizes(SizeDist::Uniform, r1, 100, 64), uniform_sizes(r2, 100, 64));
}

TEST(Table, RendersAlignedColumns) {
  util::Table t({"n", "gflops"});
  t.new_row().add(32).add(1.5);
  t.new_row().add(512).add(123.45);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("gflops"), std::string::npos);
  EXPECT_NE(s.find("123.45"), std::string::npos);
  EXPECT_NE(s.find("512"), std::string::npos);
}

TEST(Table, HistogramCountsBuckets) {
  std::vector<int> values{1, 2, 3, 10, 11, 12, 13};
  std::ostringstream os;
  util::print_histogram(os, values, 8, 16, 20);
  const std::string s = os.str();
  EXPECT_NE(s.find(" 3"), std::string::npos);
  EXPECT_NE(s.find(" 4"), std::string::npos);
}

TEST(Types, EnumNames) {
  EXPECT_EQ(to_string(Uplo::Lower), "lower");
  EXPECT_EQ(to_string(Trans::Trans), "trans");
  EXPECT_EQ(to_string(EtmMode::Aggressive), "etm-aggressive");
  EXPECT_EQ(precision_of<double>::name, "double");
  EXPECT_EQ(precision_of<float>::blas_prefix, 's');
}

}  // namespace
