// Tests for the device simulator: occupancy calculation, the block
// scheduler's invariants (the mechanisms behind every performance effect in
// the paper), the memory arena, streams and the timeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "vbatch/sim/device.hpp"
#include "vbatch/sim/occupancy.hpp"
#include "vbatch/sim/profile.hpp"
#include "vbatch/sim/scheduler.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::sim;

DeviceSpec spec() { return DeviceSpec::k40c(); }

TEST(DeviceSpec, K40cPeaks) {
  const auto s = spec();
  EXPECT_NEAR(s.peak_gflops(Precision::Double), 1430.4, 1.0);
  EXPECT_NEAR(s.peak_gflops(Precision::Single), 4291.2, 2.0);
  EXPECT_GT(s.cycle_seconds(), 1e-9);
}

// ---------------------------------------------------------------------------
// Occupancy
// ---------------------------------------------------------------------------

TEST(Occupancy, ThreadLimited) {
  // 512-thread blocks, no shared memory: 2048/512 = 4 per SM.
  EXPECT_EQ(blocks_per_sm(spec(), {512, 0}), 4);
  EXPECT_EQ(blocks_per_sm(spec(), {1024, 0}), 2);
}

TEST(Occupancy, SharedMemLimited) {
  // 64-thread blocks with 24 KB smem: 48K/24K = 2 per SM (threads would allow 16).
  EXPECT_EQ(blocks_per_sm(spec(), {64, 24 * 1024}), 2);
}

TEST(Occupancy, BlockCountCapApplies) {
  // Tiny blocks: capped by max_blocks_per_sm = 16, not 2048/32 = 64.
  EXPECT_EQ(blocks_per_sm(spec(), {32, 0}), 16);
}

TEST(Occupancy, InfeasibleShapesReturnZero) {
  EXPECT_EQ(blocks_per_sm(spec(), {0, 0}), 0);
  EXPECT_EQ(blocks_per_sm(spec(), {2048, 0}), 0);          // > max threads/block
  EXPECT_EQ(blocks_per_sm(spec(), {64, 49 * 1024}), 0);    // > smem/block
}

TEST(Occupancy, WarpGranularity) {
  // 33 threads occupy 2 warps = 64 thread slots -> 2048/64 = 32, capped at 16.
  EXPECT_EQ(blocks_per_sm(spec(), {33, 0}), 16);
  // 1023 threads -> 32 warps -> 2 per SM.
  EXPECT_EQ(blocks_per_sm(spec(), {1023, 0}), 2);
}

TEST(Occupancy, FractionBetweenZeroAndOne) {
  const double f = occupancy_fraction(spec(), {256, 8 * 1024});
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
}

// ---------------------------------------------------------------------------
// Block cost model
// ---------------------------------------------------------------------------

BlockCost work_block(double flops, int active, int live, double bytes = 0.0) {
  BlockCost c;
  c.flops = flops;
  c.active_threads = active;
  c.live_threads = live;
  c.bytes = bytes;
  return c;
}

TEST(BlockCost, EarlyExitIsCheap) {
  BlockCost exit_cost;
  exit_cost.early_exit = true;
  exit_cost.live_threads = 256;
  const double t_exit = block_seconds(spec(), Precision::Double, 4, exit_cost);
  const double t_work = block_seconds(spec(), Precision::Double, 4,
                                      work_block(1e6, 256, 256));
  EXPECT_LT(t_exit, t_work / 50.0);
}

TEST(BlockCost, IdleThreadsDragClassicBlocks) {
  // Same useful work; classic keeps 256 threads live with only 32 active.
  const double aggressive = block_seconds(spec(), Precision::Double, 4,
                                          work_block(1e6, 32, 32));
  const double classic = block_seconds(spec(), Precision::Double, 4,
                                       work_block(1e6, 32, 256));
  EXPECT_GT(classic, aggressive * 1.2);
  EXPECT_LT(classic, aggressive * 2.0);
}

TEST(BlockCost, FewActiveThreadsLimitThroughput) {
  // 4 active threads compute 8x slower than 32 when lanes allow it.
  const double few = block_seconds(spec(), Precision::Double, 1, work_block(1e6, 4, 4));
  const double many = block_seconds(spec(), Precision::Double, 1, work_block(1e6, 32, 32));
  EXPECT_GT(few, many * 4.0);
}

TEST(BlockCost, ResidencyDividesLaneShare) {
  // With 16 resident blocks the DP lane share is 4; solo it's 64.
  const double crowded = block_seconds(spec(), Precision::Double, 16,
                                       work_block(1e6, 256, 256));
  const double solo = block_seconds(spec(), Precision::Double, 1, work_block(1e6, 256, 256));
  EXPECT_GT(crowded, solo * 4.0);
}

TEST(BlockCost, MemoryBoundBlocksFollowBandwidth) {
  // A block moving lots of bytes with little compute is bandwidth-bound.
  const auto s = spec();
  BlockCost c = work_block(1e3, 256, 256, 1e6);
  const double t = block_seconds(s, Precision::Double, 1, c);
  const double bw_share = s.mem_bandwidth_gbps * 1e9 / s.num_sms;
  EXPECT_NEAR(t, 1e6 / bw_share, t * 0.01);
}

// ---------------------------------------------------------------------------
// Kernel scheduling
// ---------------------------------------------------------------------------

LaunchConfig cfg(int blocks, int threads, std::size_t smem = 0,
                 Precision p = Precision::Double) {
  LaunchConfig c;
  c.name = "test";
  c.grid_blocks = blocks;
  c.block_threads = threads;
  c.shared_mem = smem;
  c.precision = p;
  return c;
}

TEST(Scheduler, MakespanScalesWithWaves) {
  // 60 slots (4/SM × 15): 120 equal blocks take ~2 waves, 600 take ~10.
  std::vector<BlockCost> two(120, work_block(1e6, 256, 256));
  std::vector<BlockCost> ten(600, work_block(1e6, 256, 256));
  const auto t2 = schedule_kernel(spec(), cfg(120, 512), two, false);
  const auto t10 = schedule_kernel(spec(), cfg(600, 512), ten, false);
  EXPECT_NEAR(t10.exec_seconds / t2.exec_seconds, 5.0, 0.5);
}

TEST(Scheduler, ImbalancedTailHurtsUnsortedOrder) {
  // Mixed small/large blocks: interleaved order leaves long blocks finishing
  // alone; sorted-descending order packs them first. Sorted must not lose.
  std::vector<BlockCost> interleaved;
  for (int i = 0; i < 300; ++i) {
    interleaved.push_back(work_block(i % 10 == 0 ? 5e6 : 2e5, 256, 256));
  }
  std::vector<BlockCost> sorted = interleaved;
  std::sort(sorted.begin(), sorted.end(),
            [](const BlockCost& a, const BlockCost& b) { return a.flops > b.flops; });
  const auto ti = schedule_kernel(spec(), cfg(300, 256), interleaved, false);
  const auto ts = schedule_kernel(spec(), cfg(300, 256), sorted, false);
  EXPECT_LE(ts.exec_seconds, ti.exec_seconds * 1.001);
}

TEST(Scheduler, LaunchOverheadAppliedOnce) {
  std::vector<BlockCost> one(1, work_block(1e3, 32, 32));
  const auto with = schedule_kernel(spec(), cfg(1, 32), one, true);
  const auto without = schedule_kernel(spec(), cfg(1, 32), one, false);
  EXPECT_NEAR(with.seconds - without.seconds, spec().kernel_launch_overhead_us * 1e-6, 1e-9);
}

TEST(Scheduler, InfeasibleLaunchThrows) {
  std::vector<BlockCost> blocks(1);
  EXPECT_THROW(schedule_kernel(spec(), cfg(1, 64, 64 * 1024), blocks), vbatch::Error);
}

TEST(Scheduler, CountsEarlyExitsAndTotals) {
  std::vector<BlockCost> blocks;
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      BlockCost e;
      e.early_exit = true;
      e.live_threads = 64;
      blocks.push_back(e);
    } else {
      blocks.push_back(work_block(100.0, 64, 64, 50.0));
    }
  }
  const auto t = schedule_kernel(spec(), cfg(10, 64), blocks);
  EXPECT_EQ(t.early_exits, 5);
  EXPECT_DOUBLE_EQ(t.total_flops, 500.0);
  EXPECT_DOUBLE_EQ(t.total_bytes, 250.0);
}

TEST(Scheduler, MoreSmsNeverSlower) {
  auto small = spec();
  auto big = spec();
  big.num_sms = 30;
  std::vector<BlockCost> blocks(500, work_block(1e6, 256, 256));
  const auto ts = schedule_kernel(small, cfg(500, 256), blocks, false);
  const auto tb = schedule_kernel(big, cfg(500, 256), blocks, false);
  EXPECT_LE(tb.exec_seconds, ts.exec_seconds);
}

// ---------------------------------------------------------------------------
// SlotPool, effective residency, launch-plan cache
// ---------------------------------------------------------------------------

TEST(SlotPool, AssignsToLeastLoadedSlotWithLowestIndexTies) {
  // Replicates the linear min-scan it replaced: equal loads resolve to the
  // lowest slot index, so modelled times are bit-identical to the old code.
  SlotPool pool(3);
  EXPECT_DOUBLE_EQ(pool.assign(1.0), 1.0);   // slot 0
  EXPECT_DOUBLE_EQ(pool.assign(2.0), 2.0);   // slot 1
  EXPECT_DOUBLE_EQ(pool.assign(3.0), 3.0);   // slot 2
  EXPECT_DOUBLE_EQ(pool.assign(0.5), 1.5);   // back onto slot 0
  EXPECT_DOUBLE_EQ(pool.makespan(), 3.0);
}

TEST(SlotPool, NotBeforeDelaysStart) {
  SlotPool pool(2);
  EXPECT_DOUBLE_EQ(pool.assign(1.0, 5.0), 6.0);  // waits until t=5
  EXPECT_DOUBLE_EQ(pool.assign(1.0), 1.0);       // other slot still free at 0
}

TEST(SlotPool, MatchesLinearScanOnRandomLoads) {
  // Heap-based assignment must reproduce std::min_element exactly.
  SlotPool pool(7);
  std::vector<double> scan(7, 0.0);
  std::uint64_t state = 42;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double dur = static_cast<double>(state >> 40) * 1e-6;
    auto it = std::min_element(scan.begin(), scan.end());
    *it += dur;
    EXPECT_DOUBLE_EQ(pool.assign(dur), *it);
  }
  EXPECT_DOUBLE_EQ(pool.makespan(), *std::max_element(scan.begin(), scan.end()));
}

TEST(Scheduler, EffectiveResidencyBasics) {
  EXPECT_EQ(effective_residency(0, 15, 4), 1);
  EXPECT_EQ(effective_residency(15, 15, 4), 1);   // one wave
  EXPECT_EQ(effective_residency(30, 15, 4), 2);   // two waves
  EXPECT_EQ(effective_residency(60, 15, 4), 4);   // saturated
  EXPECT_EQ(effective_residency(100000, 15, 4), 4);
}

TEST(Scheduler, EffectiveResidencySurvives32BitGridCounts) {
  // The old code cast (grid + sms - 1) to long via int arithmetic; a grid
  // above INT_MAX must not wrap. 3e9 blocks on 15 SMs is deeply saturated.
  const std::int64_t grid = 3'000'000'000;
  EXPECT_EQ(effective_residency(grid, 15, 4), 4);
  EXPECT_EQ(effective_residency(grid, 15, 16), 16);
  // Just over one wave at huge scale: still 2, no overflow.
  EXPECT_EQ(effective_residency(static_cast<std::int64_t>(15) * 1'000'000 + 1, 15'000'000, 4),
            2);
}

TEST(LaunchPlanCache, MemoizesPlansAndCountsHits) {
  LaunchPlanCache cache;
  const BlockShape shape{256, 8 * 1024};
  const auto& p1 = cache.plan(spec(), shape, Precision::Double);
  EXPECT_EQ(p1.resident_per_sm, blocks_per_sm(spec(), shape));
  EXPECT_EQ(p1.slots, spec().num_sms * p1.resident_per_sm);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const auto& p2 = cache.plan(spec(), shape, Precision::Double);
  EXPECT_EQ(&p1, &p2);  // same cached entry
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  cache.plan(spec(), {512, 0}, Precision::Single);
  EXPECT_EQ(cache.distinct_plans(), 2u);
}

TEST(LaunchPlanCache, DeviceLaunchesPopulateCache) {
  Device dev(spec(), ExecMode::TimingOnly);
  auto fn = [](const ExecContext&, int) { return work_block(1e4, 64, 64); };
  dev.launch(cfg(10, 64), fn);
  dev.launch(cfg(10, 64), fn);
  dev.launch(cfg(10, 64), fn);
  EXPECT_EQ(dev.plan_cache().distinct_plans(), 1u);
  EXPECT_GE(dev.plan_cache().hits(), 2u);
}

// ---------------------------------------------------------------------------
// Device: arena, clock, timeline, streams
// ---------------------------------------------------------------------------

TEST(Device, ArenaAccountsAndFrees) {
  Device dev(spec());
  const std::size_t before = dev.mem_used();
  void* p = dev.device_malloc(1 << 20);
  EXPECT_EQ(dev.mem_used(), before + (1 << 20));
  dev.device_free(p);
  EXPECT_EQ(dev.mem_used(), before);
}

TEST(Device, ArenaOverflowThrowsOutOfMemory) {
  Device dev(spec());
  try {
    (void)dev.device_malloc(dev.mem_capacity() + 1);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::OutOfDeviceMemory);
  }
}

TEST(Device, TimingOnlyAllocationsAreVirtual) {
  Device dev(spec(), ExecMode::TimingOnly);
  // 11 GB "allocation" must succeed without touching host memory.
  void* p = dev.device_malloc(11ull << 30);
  EXPECT_GT(dev.mem_used(), 10ull << 30);
  dev.device_free(p);
  EXPECT_EQ(dev.mem_used(), 0u);
}

TEST(Device, FreeingUnknownPointerThrows) {
  Device dev(spec());
  int x = 0;
  EXPECT_THROW(dev.device_free(&x), Error);
}

TEST(Device, LaunchAdvancesClockAndRecords) {
  Device dev(spec());
  LaunchConfig c = cfg(10, 64);
  const double t = dev.launch(c, [](const ExecContext&, int) {
    return work_block(1e4, 64, 64);
  });
  EXPECT_GT(t, 0.0);
  EXPECT_DOUBLE_EQ(dev.time(), t);
  ASSERT_EQ(dev.timeline().size(), 1u);
  EXPECT_EQ(dev.timeline().records()[0].grid_blocks, 10);
  EXPECT_DOUBLE_EQ(dev.timeline().records()[0].flops, 1e5);
}

TEST(Device, FullModeRunsFunctorsExactlyOncePerBlock) {
  Device dev(spec());
  std::vector<std::atomic<int>> counts(200);
  LaunchConfig c = cfg(200, 64);
  dev.launch(c, [&counts](const ExecContext& ctx, int b) {
    EXPECT_TRUE(ctx.full());
    counts[static_cast<std::size_t>(b)].fetch_add(1);
    return work_block(1.0, 1, 64);
  });
  for (auto& cnt : counts) EXPECT_EQ(cnt.load(), 1);
}

TEST(Device, TimingOnlyContextReportsNotFull) {
  Device dev(spec(), ExecMode::TimingOnly);
  LaunchConfig c = cfg(4, 64);
  dev.launch(c, [](const ExecContext& ctx, int) {
    EXPECT_FALSE(ctx.full());
    return work_block(1.0, 1, 64);
  });
}

TEST(Device, ConcurrentStreamsOverlapKernels) {
  // 8 kernels of 30 latency-bound blocks each (few active threads, so the
  // per-block rate does not depend on residency): serially each kernel pays
  // its own launch overhead and partially-filled waves; on 8 streams the
  // blocks pool across the slot machine and the tails overlap.
  Device serial_dev(spec());
  Device stream_dev(spec());
  auto fn = [](const ExecContext&, int) { return work_block(2e5, 8, 256); };

  double serial = 0.0;
  for (int k = 0; k < 8; ++k) serial += serial_dev.launch(cfg(30, 256), fn);

  std::vector<LaunchConfig> cfgs(8, cfg(30, 256));
  std::vector<BlockFn> fns(8, fn);
  const double overlapped = stream_dev.launch_concurrent(cfgs, fns, 8);
  EXPECT_LT(overlapped, serial * 0.7);
}

TEST(Device, StreamsRespectPerStreamOrdering) {
  // One stream: kernels serialize; result close to the serial sum.
  Device dev(spec());
  auto fn = [](const ExecContext&, int) { return work_block(2e6, 256, 256); };
  std::vector<LaunchConfig> cfgs(4, cfg(60, 256));
  std::vector<BlockFn> fns(4, fn);
  const double t1 = dev.launch_concurrent(cfgs, fns, 1);

  Device dev2(spec());
  const double t8 = dev2.launch_concurrent(cfgs, fns, 4);
  EXPECT_GT(t1, t8);
}

TEST(Device, StreamClampIsVisibleInTimeline) {
  // Requesting more streams than the device supports must not produce
  // phantom concurrency figures: the timeline records the post-clamp stream
  // assignment, so streams_used() reports the device limit, not the request.
  Device dev(spec());
  const int limit = dev.spec().max_concurrent_streams;
  const int kernels = limit + 16;
  auto fn = [](const ExecContext&, int) { return work_block(1e4, 8, 64); };
  std::vector<LaunchConfig> cfgs(static_cast<std::size_t>(kernels), cfg(4, 64));
  std::vector<BlockFn> fns(static_cast<std::size_t>(kernels), fn);
  dev.launch_concurrent(cfgs, fns, 4 * limit);
  EXPECT_EQ(dev.timeline().streams_used(), limit);
  for (const auto& rec : dev.timeline().records()) {
    EXPECT_GE(rec.stream, 0);
    EXPECT_LT(rec.stream, limit);
  }
  // The profile carries the same post-clamp figure.
  const auto profiles = profile_timeline(dev.timeline());
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].streams, limit);
}

TEST(Device, StreamsClampToKernelCount) {
  // More streams than kernels: only one kernel per stream is possible, so
  // the used-stream count equals the batch, and the run must behave exactly
  // like a run with num_streams == batch.
  Device dev(spec());
  auto fn = [](const ExecContext&, int) { return work_block(1e4, 8, 64); };
  std::vector<LaunchConfig> cfgs(5, cfg(4, 64));
  std::vector<BlockFn> fns(5, fn);
  const double wide = dev.launch_concurrent(cfgs, fns, 16);
  EXPECT_EQ(dev.timeline().streams_used(), 5);

  Device dev2(spec());
  const double exact = dev2.launch_concurrent(cfgs, fns, 5);
  EXPECT_DOUBLE_EQ(wide, exact);

  // Plain synchronous launches carry no stream tag.
  Device dev3(spec());
  dev3.launch(cfg(4, 64), fn);
  EXPECT_EQ(dev3.timeline().streams_used(), 0);
  EXPECT_EQ(dev3.timeline().records().back().stream, -1);
}

TEST(Timeline, BusyAndPrefixQueries) {
  Device dev(spec());
  dev.launch(cfg(5, 64), [](const ExecContext&, int) { return work_block(10.0, 8, 64); });
  dev.launch(cfg(5, 64), [](const ExecContext&, int) { return work_block(10.0, 8, 64); });
  EXPECT_EQ(dev.timeline().count_with_prefix("test"), 2u);
  EXPECT_GT(dev.timeline().busy_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(dev.timeline().total_flops(), 100.0);
}

}  // namespace
