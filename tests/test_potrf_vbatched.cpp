// End-to-end tests for the vbatched Cholesky: both interfaces, both
// algorithmic paths, all ETM/sorting variants, fixed-size batches, the
// padding adapter, crossover dispatch, failure injection and device-memory
// exhaustion.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/crossover.hpp"
#include "vbatch/core/hybrid.hpp"
#include "vbatch/core/padding.hpp"
#include "vbatch/core/potrf_batched_fixed.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;

template <typename T>
void check_batch_factors(Queue& q, Batch<T>& batch, const std::vector<std::vector<T>>& originals,
                         Uplo uplo, double tol) {
  ASSERT_TRUE(q.full());
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
    const int n = batch.sizes()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<T> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    const double res = blas::potrf_residual<T>(uplo, orig, batch.matrix(i));
    EXPECT_LT(res, tol) << "matrix " << i << " (n=" << n << ")";
  }
}

template <typename T>
std::vector<std::vector<T>> snapshot(Batch<T>& batch) {
  std::vector<std::vector<T>> out;
  out.reserve(static_cast<std::size_t>(batch.count()));
  for (int i = 0; i < batch.count(); ++i) out.push_back(batch.copy_matrix(i));
  return out;
}

// ---------------------------------------------------------------------------
// Numerical correctness across every option combination.
// ---------------------------------------------------------------------------

struct VariantParam {
  PotrfPath path;
  EtmMode etm;
  bool sorting;
  bool streamed;
  Uplo uplo;
};

class PotrfVariantTest : public ::testing::TestWithParam<VariantParam> {};

TEST_P(PotrfVariantTest, FactorsWholeRandomBatch) {
  const auto p = GetParam();
  Queue q;
  Rng rng(2024);
  auto sizes = uniform_sizes(rng, 60, 96);
  sizes[0] = 0;  // empty matrix must be handled
  Batch<double> batch(q, sizes);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);

  PotrfOptions opts;
  opts.path = p.path;
  opts.etm = p.etm;
  opts.implicit_sorting = p.sorting;
  opts.streamed_syrk = p.streamed;
  const auto result = potrf_vbatched<double>(q, p.uplo, batch, opts);

  EXPECT_GT(result.seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.flops, batch.potrf_flops());
  check_batch_factors(q, batch, originals, p.uplo, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, PotrfVariantTest,
    ::testing::Values(
        VariantParam{PotrfPath::Fused, EtmMode::Classic, false, false, Uplo::Lower},
        VariantParam{PotrfPath::Fused, EtmMode::Aggressive, false, false, Uplo::Lower},
        VariantParam{PotrfPath::Fused, EtmMode::Classic, true, false, Uplo::Lower},
        VariantParam{PotrfPath::Fused, EtmMode::Aggressive, true, false, Uplo::Lower},
        VariantParam{PotrfPath::Fused, EtmMode::Aggressive, true, false, Uplo::Upper},
        VariantParam{PotrfPath::Separated, EtmMode::Classic, false, false, Uplo::Lower},
        VariantParam{PotrfPath::Separated, EtmMode::Classic, false, true, Uplo::Lower},
        VariantParam{PotrfPath::Separated, EtmMode::Classic, false, false, Uplo::Upper},
        VariantParam{PotrfPath::Auto, EtmMode::Aggressive, true, false, Uplo::Lower}));

TEST(PotrfVbatched, AllVariantsProduceIdenticalFactors) {
  // ETMs and sorting are scheduling concerns; the arithmetic must be
  // bit-identical across fused variants.
  Rng size_rng(7);
  const auto sizes = uniform_sizes(size_rng, 40, 80);
  std::vector<std::vector<double>> reference;
  bool first = true;
  for (EtmMode etm : {EtmMode::Classic, EtmMode::Aggressive}) {
    for (bool sorting : {false, true}) {
      Queue q;
      Batch<double> batch(q, sizes);
      Rng fill(99);
      batch.fill_spd(fill);
      PotrfOptions opts;
      opts.path = PotrfPath::Fused;
      opts.etm = etm;
      opts.implicit_sorting = sorting;
      potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
      auto snap = snapshot(batch);
      if (first) {
        reference = std::move(snap);
        first = false;
      } else {
        EXPECT_EQ(snap, reference) << to_string(etm) << " sorting=" << sorting;
      }
    }
  }
}

TEST(PotrfVbatched, GaussianDistributionBatch) {
  Queue q;
  Rng rng(31);
  auto sizes = gaussian_sizes(rng, 50, 120);
  Batch<double> batch(q, sizes);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);
  const auto result = potrf_vbatched<double>(q, Uplo::Lower, batch);
  EXPECT_GT(result.gflops(), 0.0);
  check_batch_factors(q, batch, originals, Uplo::Lower, 1e-12);
}

TEST(PotrfVbatched, SinglePrecision) {
  Queue q;
  Rng rng(33);
  auto sizes = uniform_sizes(rng, 30, 64);
  Batch<float> batch(q, sizes);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);
  potrf_vbatched<float>(q, Uplo::Lower, batch);
  check_batch_factors(q, batch, originals, Uplo::Lower, 2e-5);
}

class PaddedLdaTest : public ::testing::TestWithParam<PotrfPath> {};

TEST_P(PaddedLdaTest, IndependentLeadingDimensionsRespected) {
  // §III-A: every matrix has an independent leading dimension. A non-zero
  // pad makes lda_i != n_i for every matrix; any kernel that conflates the
  // two corrupts results or the padding.
  Queue q;
  Rng rng(222);
  auto sizes = uniform_sizes(rng, 30, 90);
  Batch<double> batch(q, sizes, /*lda_pad=*/7);
  for (int i = 0; i < batch.count(); ++i) {
    EXPECT_EQ(batch.ldas()[static_cast<std::size_t>(i)],
              std::max(1, sizes[static_cast<std::size_t>(i)] + 7));
  }
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);

  PotrfOptions opts;
  opts.path = GetParam();
  potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
  check_batch_factors(q, batch, originals, Uplo::Lower, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Paths, PaddedLdaTest,
                         ::testing::Values(PotrfPath::Fused, PotrfPath::Separated));

// ---------------------------------------------------------------------------
// Interface pair (§III-A)
// ---------------------------------------------------------------------------

TEST(PotrfVbatched, MaxInterfaceMatchesLapackLikeInterface) {
  Rng size_rng(55);
  const auto sizes = uniform_sizes(size_rng, 25, 70);

  Queue q1, q2;
  Batch<double> b1(q1, sizes), b2(q2, sizes);
  Rng f1(5), f2(5);
  b1.fill_spd(f1);
  b2.fill_spd(f2);

  potrf_vbatched<double>(q1, Uplo::Lower, b1);
  potrf_vbatched_max<double>(q2, Uplo::Lower, b2, 70);
  for (int i = 0; i < b1.count(); ++i) EXPECT_EQ(b1.copy_matrix(i), b2.copy_matrix(i));
}

TEST(PotrfVbatched, LapackLikeInterfaceLaunchesMaxReduction) {
  Queue q;
  Rng rng(11);
  auto sizes = uniform_sizes(rng, 20, 50);
  Batch<double> batch(q, sizes);
  batch.fill_spd(rng);
  potrf_vbatched<double>(q, Uplo::Lower, batch);
  EXPECT_GE(q.device().timeline().count_with_prefix("aux_imax_reduce"), 1u);
}

TEST(PotrfVbatched, MaxOverheadIsNegligible) {
  // §III-A: "In most cases, the overhead of computing the maximum is
  // negligible." Compare device times of the two interfaces.
  Rng size_rng(77);
  const auto sizes = uniform_sizes(size_rng, 800, 128);
  Queue q1(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Queue q2(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> b1(q1, sizes), b2(q2, sizes);
  const double t0_1 = q1.time();
  potrf_vbatched<double>(q1, Uplo::Lower, b1);
  const double lapack_like = q1.time() - t0_1;
  const double t0_2 = q2.time();
  potrf_vbatched_max<double>(q2, Uplo::Lower, b2, 128);
  const double expert = q2.time() - t0_2;
  EXPECT_LT(lapack_like, expert * 1.05);
}

// ---------------------------------------------------------------------------
// Crossover policy (§IV-E)
// ---------------------------------------------------------------------------

TEST(Crossover, FeasibilityBoundsExceedCrossover) {
  const auto spec = sim::DeviceSpec::k40c();
  EXPECT_GT(fused_feasible_max(spec, Precision::Double), 500);
  EXPECT_GE(crossover_max_size(spec, Precision::Single),
            crossover_max_size(spec, Precision::Double));
  EXPECT_LE(crossover_max_size(spec, Precision::Double),
            fused_feasible_max(spec, Precision::Double));
}

TEST(Crossover, AutoPathSelectsByMaxSize) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(3);
  {
    auto sizes = uniform_sizes(rng, 50, 64);
    Batch<double> small(q, sizes);
    const auto r = potrf_vbatched<double>(q, Uplo::Lower, small);
    EXPECT_EQ(r.path_taken, PotrfPath::Fused);
  }
  {
    auto sizes = uniform_sizes(rng, 50, 1500);
    Batch<double> large(q, sizes);
    const auto r = potrf_vbatched<double>(q, Uplo::Lower, large);
    EXPECT_EQ(r.path_taken, PotrfPath::Separated);
  }
}

TEST(Crossover, OverrideRespected) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(4);
  auto sizes = uniform_sizes(rng, 50, 200);
  Batch<double> batch(q, sizes);
  PotrfOptions opts;
  opts.crossover = 100;  // force separated for a 200-max batch
  const auto r = potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
  EXPECT_EQ(r.path_taken, PotrfPath::Separated);
}

TEST(Crossover, FusedPathRejectsInfeasibleSizes) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(5);
  auto sizes = uniform_sizes(rng, 10, 2000);
  Batch<double> batch(q, sizes);
  PotrfOptions opts;
  opts.path = PotrfPath::Fused;
  EXPECT_THROW(potrf_vbatched<double>(q, Uplo::Lower, batch, opts), Error);
}

// ---------------------------------------------------------------------------
// Tuning-option overrides
// ---------------------------------------------------------------------------

TEST(PotrfOptions, ExplicitBlockingOverridesProduceSameFactors) {
  Rng size_rng(61);
  const auto sizes = uniform_sizes(size_rng, 25, 80);
  std::vector<std::vector<double>> reference;
  bool first = true;
  for (int nb : {8, 16, 24}) {
    Queue q;
    Batch<double> batch(q, sizes);
    Rng fill(63);
    batch.fill_spd(fill);
    PotrfOptions opts;
    opts.path = PotrfPath::Fused;
    opts.fused_nb = nb;
    potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
    // Different blockings change the operation order (different rounding),
    // so compare against the reference factorization numerically.
    for (int i = 0; i < batch.count(); ++i) {
      ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0);
    }
    auto snap = snapshot(batch);
    if (first) {
      reference = snap;
      first = false;
    } else {
      // Compare the lower factors only: like LAPACK, the content above the
      // diagonal is unspecified after a Lower factorization (the fused
      // panel update sweeps through it).
      for (std::size_t i = 0; i < snap.size(); ++i) {
        const int n = sizes[i];
        for (int c = 0; c < n; ++c)
          for (int r = c; r < n; ++r)
            EXPECT_NEAR(snap[i][static_cast<std::size_t>(r + c * n)],
                        reference[i][static_cast<std::size_t>(r + c * n)], 1e-10)
                << "matrix " << i;
      }
    }
  }
}

TEST(PotrfOptions, SeparatedNbOverrideRespected) {
  Rng size_rng(65);
  const auto sizes = uniform_sizes(size_rng, 20, 200);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  PotrfOptions opts;
  opts.path = PotrfPath::Separated;
  opts.separated_nb = 32;
  potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
  // NB = 32 over max 200 -> ceil(200/32) = 7 panel phases; with the default
  // NB = 64 there would be only 4. Count the panel launches (one per
  // internal nb_inner step per phase).
  const auto panels = q.device().timeline().count_with_prefix("vbatched_potf2_panel");
  EXPECT_GE(panels, 7u);
}

TEST(PotrfOptions, SortWindowOverrideChangesLaunchShape) {
  Rng size_rng(67);
  const auto sizes = uniform_sizes(size_rng, 600, 128);
  auto run_with_window = [&](int window) {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<double> batch(q, sizes);
    PotrfOptions opts;
    opts.path = PotrfPath::Fused;
    opts.implicit_sorting = true;
    opts.sort_window = window;
    potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
    return q.device().timeline().count_with_prefix("fused_potrf_step");
  };
  // A window as wide as the whole range degenerates to one launch per step;
  // narrow windows split steps into several launches.
  EXPECT_GT(run_with_window(16), run_with_window(128));
}

TEST(PotrfOptions, StreamedSyrkChangesKernelMix) {
  Rng size_rng(69);
  const auto sizes = uniform_sizes(size_rng, 50, 400);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  PotrfOptions opts;
  opts.path = PotrfPath::Separated;
  opts.streamed_syrk = true;
  potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
  EXPECT_GT(q.device().timeline().count_with_prefix("streamed_syrk"), 0u);
  EXPECT_EQ(q.device().timeline().count_with_prefix("vbatched_syrk"), 0u);
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

class NonSpdTest : public ::testing::TestWithParam<PotrfPath> {};

TEST_P(NonSpdTest, InfoIdentifiesOnlyTheBadMatrix) {
  Queue q;
  Rng rng(13);
  std::vector<int> sizes{40, 56, 48};
  Batch<double> batch(q, sizes);
  batch.fill_spd(rng);
  // Break SPD-ness of matrix 1 at a late pivot.
  batch.matrix(1)(50, 50) = -1e9;
  const auto originals = snapshot(batch);

  PotrfOptions opts;
  opts.path = GetParam();
  potrf_vbatched<double>(q, Uplo::Lower, batch, opts);

  EXPECT_EQ(batch.info()[0], 0);
  EXPECT_EQ(batch.info()[1], 51);
  EXPECT_EQ(batch.info()[2], 0);
  // Healthy matrices still factored correctly.
  ConstMatrixView<double> o0(originals[0].data(), 40, 40, 40);
  EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower, o0, batch.matrix(0)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Paths, NonSpdTest,
                         ::testing::Values(PotrfPath::Fused, PotrfPath::Separated));

// ---------------------------------------------------------------------------
// Fixed-size batched + padding adapter (§IV-F)
// ---------------------------------------------------------------------------

TEST(PotrfBatchedFixed, FactorsUniformBatch) {
  Queue q;
  Rng rng(17);
  Batch<double> batch = Batch<double>::fixed(q, 20, 48);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);
  const auto r = potrf_batched_fixed<double>(q, Uplo::Lower, batch);
  EXPECT_GT(r.gflops(), 0.0);
  check_batch_factors(q, batch, originals, Uplo::Lower, 1e-12);
}

TEST(PotrfBatchedFixed, RejectsMixedSizes) {
  Queue q;
  std::vector<int> sizes{16, 17};
  Batch<double> batch(q, sizes);
  EXPECT_THROW(potrf_batched_fixed<double>(q, Uplo::Lower, batch), Error);
}

TEST(Padding, FactorsMatchDirectVbatched) {
  Rng size_rng(19);
  const auto sizes = uniform_sizes(size_rng, 15, 40);

  Queue q1, q2;
  Batch<double> direct(q1, sizes), padded(q2, sizes);
  Rng f1(21), f2(21);
  direct.fill_spd(f1);
  padded.fill_spd(f2);

  potrf_vbatched<double>(q1, Uplo::Lower, direct);
  const auto r = potrf_vbatched_via_padding<double>(q2, Uplo::Lower, padded, 40);
  EXPECT_GT(r.executed_flops, r.useful_flops);

  for (int i = 0; i < direct.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    auto a = direct.matrix(i);
    auto b = padded.matrix(i);
    for (int c = 0; c < n; ++c)
      for (int rr = c; rr < n; ++rr) EXPECT_NEAR(a(rr, c), b(rr, c), 1e-10);
  }
}

TEST(Padding, ExhaustsDeviceMemoryLikeThePaper) {
  // batch=800 at Nmax=2000 in double needs 800·2000²·8 B = 25.6 GB > 12 GB.
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(23);
  auto sizes = uniform_sizes(rng, 800, 2000);
  Batch<double> batch(q, sizes);
  try {
    potrf_vbatched_via_padding<double>(q, Uplo::Lower, batch, 2000);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::OutOfDeviceMemory);
  }
  // The direct vbatched factorization of the same batch fits comfortably.
  EXPECT_NO_THROW(potrf_vbatched<double>(q, Uplo::Lower, batch));
}

// ---------------------------------------------------------------------------
// Hybrid baseline
// ---------------------------------------------------------------------------

TEST(Hybrid, FactorsCorrectlyAndSlowly) {
  Queue q;
  Rng rng(29);
  auto sizes = uniform_sizes(rng, 12, 60);
  Batch<double> batch(q, sizes);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);

  const auto hybrid = potrf_hybrid_sequence<double>(q, cpu::CpuSpec::dual_e5_2670(),
                                                    Uplo::Lower, batch);
  check_batch_factors(q, batch, originals, Uplo::Lower, 1e-12);

  // The hybrid path must be far slower than vbatched on this workload.
  Queue q2(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> b2(q2, sizes);
  const auto direct = potrf_vbatched<double>(q2, Uplo::Lower, b2);
  EXPECT_GT(hybrid.seconds, direct.seconds * 3.0);
}

// ---------------------------------------------------------------------------
// Timing-mode / Full-mode agreement
// ---------------------------------------------------------------------------

TEST(PotrfVbatched, TimingOnlyMatchesFullModeSeconds) {
  Rng size_rng(41);
  const auto sizes = uniform_sizes(size_rng, 30, 80);

  Queue qf(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Queue qt(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> bf(qf, sizes), bt(qt, sizes);
  Rng fill(1);
  bf.fill_spd(fill);

  const auto rf = potrf_vbatched<double>(qf, Uplo::Lower, bf);
  const auto rt = potrf_vbatched<double>(qt, Uplo::Lower, bt);
  EXPECT_NEAR(rf.seconds, rt.seconds, rf.seconds * 1e-9);
}

}  // namespace
