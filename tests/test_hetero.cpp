// vbatch::hetero — the multi-device heterogeneous runtime.
//
// The load-bearing guarantee under test: the heterogeneous path produces
// BIT-IDENTICAL factors and info arrays to the single-device path, for
// every pool composition, partition policy, steal schedule and seed. The
// partitioner and scheduler are also covered as units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::hetero;

template <typename T>
std::vector<std::vector<T>> snapshot(Batch<T>& batch) {
  std::vector<std::vector<T>> out;
  out.reserve(static_cast<std::size_t>(batch.count()));
  for (int i = 0; i < batch.count(); ++i) out.push_back(batch.copy_matrix(i));
  return out;
}

/// Bitwise comparison of two factor sets (memcmp, not EXPECT_NEAR — the
/// hetero path promises the same bits, not just the same residuals).
template <typename T>
void expect_bit_identical(const std::vector<std::vector<T>>& a,
                          const std::vector<std::vector<T>>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(0, std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(T)))
        << what << ": matrix " << i << " differs";
  }
}

/// A Gaussian DP batch, the paper's harder size distribution.
std::vector<int> test_sizes(int count, int nmax, std::uint64_t seed = 33) {
  Rng rng(seed);
  return gaussian_sizes(rng, count, nmax);
}

/// Factors `sizes` on a single K40c and returns {factors, info}.
struct Baseline {
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
  double seconds = 0.0;
};

Baseline single_device_baseline(const std::vector<int>& sizes, const PotrfOptions& opts = {}) {
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  const auto r = potrf_vbatched<double>(q, Uplo::Lower, batch, opts);
  Baseline b;
  b.factors = snapshot(batch);
  b.info.assign(batch.info().begin(), batch.info().end());
  b.seconds = r.seconds;
  return b;
}

// ---------------------------------------------------------------------------
// Bit-identity: the acceptance criterion
// ---------------------------------------------------------------------------

TEST(HeteroBitIdentity, EveryPoolCompositionMatchesSingleDevice) {
  const auto sizes = test_sizes(120, 300);
  const Baseline base = single_device_baseline(sizes);

  // k40c-first pools resolve options against the same reference device as
  // the baseline, so default options already pin identical blocking.
  const char* pools[] = {"k40c", "k40c,k40c", "k40c,p100", "cpu,k40c",
                         "cpu,k40c,k40c,p100", "cpu"};
  for (const char* desc : pools) {
    DevicePool pool = DevicePool::parse(desc);
    Queue q;
    Batch<double> batch(q, sizes);
    Rng fill(7);
    batch.fill_spd(fill);
    const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
    EXPECT_GT(r.seconds, 0.0) << desc;
    expect_bit_identical(base.factors, snapshot(batch), desc);
    for (int i = 0; i < batch.count(); ++i)
      EXPECT_EQ(base.info[static_cast<std::size_t>(i)], batch.info()[static_cast<std::size_t>(i)])
          << desc << ": info " << i;
  }
}

TEST(HeteroBitIdentity, P100FirstPoolMatchesWhenBlockingIsPinned) {
  // A p100-first pool resolves Auto options against the P100; pinning the
  // blocking explicitly restores bit-identity with the K40c baseline — the
  // documented contract for cross-reference-device comparisons.
  const auto sizes = test_sizes(80, 280);
  PotrfOptions pinned;
  pinned.path = PotrfPath::Fused;
  pinned.fused_nb = 16;
  const Baseline base = single_device_baseline(sizes, pinned);

  DevicePool pool = DevicePool::parse("p100,k40c,cpu");
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  HeteroOptions opts;
  opts.potrf = pinned;
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
  EXPECT_EQ(r.path_taken, PotrfPath::Fused);
  expect_bit_identical(base.factors, snapshot(batch), "p100-first");
}

TEST(HeteroBitIdentity, EveryPartitionAndStealScheduleMatches) {
  const auto sizes = test_sizes(100, 300);
  const Baseline base = single_device_baseline(sizes);

  for (Partition part : {Partition::CostModel, Partition::RoundRobin, Partition::FirstOnly}) {
    for (StealPolicy steal : {StealPolicy::MostLoaded, StealPolicy::Random}) {
      for (bool stealing : {true, false}) {
        for (std::uint64_t seed : {1ull, 2016ull, 0xDEADBEEFull}) {
          DevicePool pool = DevicePool::parse("cpu,k40c,p100");
          Queue q;
          Batch<double> batch(q, sizes);
          Rng fill(7);
          batch.fill_spd(fill);
          HeteroOptions opts;
          opts.partition = part;
          opts.steal = steal;
          opts.work_stealing = stealing;
          opts.steal_seed = seed;
          const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
          const std::string what = std::string(to_string(part)) + "/" + to_string(steal) +
                                   (stealing ? "/steal" : "/no-steal");
          EXPECT_GT(r.seconds, 0.0) << what;
          expect_bit_identical(base.factors, snapshot(batch), what.c_str());
          for (int i = 0; i < batch.count(); ++i)
            EXPECT_EQ(base.info[static_cast<std::size_t>(i)],
                      batch.info()[static_cast<std::size_t>(i)])
                << what << ": info " << i;
        }
      }
    }
  }
}

TEST(HeteroBitIdentity, BothPathsAndBothUplos) {
  const auto sizes = test_sizes(60, 200);
  for (PotrfPath path : {PotrfPath::Fused, PotrfPath::Separated}) {
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      PotrfOptions popts;
      popts.path = path;

      Queue q1;
      Batch<double> b1(q1, sizes);
      Rng f1(7);
      b1.fill_spd(f1);
      potrf_vbatched<double>(q1, uplo, b1, popts);

      DevicePool pool = DevicePool::parse("cpu,k40c,k40c");
      Queue q2;
      Batch<double> b2(q2, sizes);
      Rng f2(7);
      b2.fill_spd(f2);
      HeteroOptions hopts;
      hopts.potrf = popts;
      const auto r = potrf_vbatched_hetero<double>(pool, uplo, b2, hopts);
      EXPECT_EQ(r.path_taken, path);
      expect_bit_identical(snapshot(b1), snapshot(b2), to_string(path));
    }
  }
}

TEST(HeteroBitIdentity, ExpertInterfaceMatchesLapackLike) {
  const auto sizes = test_sizes(70, 250);
  const int max_n = *std::max_element(sizes.begin(), sizes.end());
  const Baseline base = single_device_baseline(sizes);

  DevicePool pool = DevicePool::parse("k40c,p100");
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  const auto r = potrf_vbatched_hetero_max<double>(pool, Uplo::Lower, batch, max_n);
  EXPECT_GT(r.seconds, 0.0);
  expect_bit_identical(base.factors, snapshot(batch), "expert interface");
}

// ---------------------------------------------------------------------------
// Correctness beyond bit-matching
// ---------------------------------------------------------------------------

TEST(Hetero, FactorsSatisfyResidualBound) {
  const auto sizes = test_sizes(50, 220);
  DevicePool pool = DevicePool::parse("cpu,k40c,p100");
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(11);
  batch.fill_spd(fill);
  const auto originals = snapshot(batch);

  potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
    const int n = sizes[static_cast<std::size_t>(i)];
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower, orig, batch.matrix(i)), 1e-12)
        << "matrix " << i;
  }
}

TEST(Hetero, NonSpdFailurePropagatesToOriginalOrder) {
  std::vector<int> sizes{64, 90, 48, 120, 33};
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(13);
  batch.fill_spd(fill);
  batch.matrix(1)(40, 40) = -1e9;  // break SPD in submission-order slot 1
  batch.matrix(3)(7, 7) = -1e9;    // and slot 3

  // Single-device reference for the exact info values.
  Queue qr;
  Batch<double> ref(qr, sizes);
  Rng fr(13);
  ref.fill_spd(fr);
  ref.matrix(1)(40, 40) = -1e9;
  ref.matrix(3)(7, 7) = -1e9;
  potrf_vbatched<double>(qr, Uplo::Lower, ref);

  DevicePool pool = DevicePool::parse("cpu,k40c");
  potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  for (int i = 0; i < batch.count(); ++i)
    EXPECT_EQ(ref.info()[static_cast<std::size_t>(i)], batch.info()[static_cast<std::size_t>(i)])
        << "info " << i;
  EXPECT_GT(batch.info()[1], 0);
  EXPECT_GT(batch.info()[3], 0);
}

TEST(Hetero, FloatAndComplexInstantiations) {
  const auto sizes = test_sizes(30, 150);
  {
    DevicePool pool = DevicePool::parse("k40c,k40c");
    Queue q;
    Batch<float> batch(q, sizes);
    Rng fill(17);
    batch.fill_spd(fill);
    const auto r = potrf_vbatched_hetero<float>(pool, Uplo::Lower, batch);
    EXPECT_GT(r.gflops(), 0.0);
    for (int i = 0; i < batch.count(); ++i) EXPECT_EQ(batch.info()[static_cast<std::size_t>(i)], 0);
  }
  {
    DevicePool pool = DevicePool::parse("cpu,k40c");
    Queue q;
    Batch<std::complex<double>> batch(q, sizes);
    Rng fill(17);
    batch.fill_spd(fill);
    const auto r = potrf_vbatched_hetero<std::complex<double>>(pool, Uplo::Lower, batch);
    EXPECT_GT(r.gflops(), 0.0);
    for (int i = 0; i < batch.count(); ++i) EXPECT_EQ(batch.info()[static_cast<std::size_t>(i)], 0);
  }
}

TEST(Hetero, TimingOnlyModeRuns) {
  Rng rng(41);
  const auto sizes = gaussian_sizes(rng, 400, 512);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  DevicePool pool = DevicePool::parse("cpu,k40c,k40c");
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.flops, 0.0);
  EXPECT_EQ(static_cast<int>(r.executors.size()), 3);
}

// ---------------------------------------------------------------------------
// Scaling, scheduling and energy behaviour
// ---------------------------------------------------------------------------

TEST(HeteroScaling, TwoGpusBeatOneAndCpuHelps) {
  Rng rng(43);
  const auto sizes = gaussian_sizes(rng, 600, 400);
  auto makespan = [&](const char* desc) {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<double> batch(q, sizes);
    DevicePool pool = DevicePool::parse(desc);
    return potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch).seconds;
  };
  const double one = makespan("k40c");
  const double two = makespan("k40c,k40c");
  const double two_cpu = makespan("k40c,k40c,cpu");
  EXPECT_LT(two, one / 1.5) << "second GPU must give a substantial speedup";
  EXPECT_LT(two_cpu, two) << "adding the CPU must not slow the pool down";
}

TEST(HeteroScaling, WorkStealingRescuesFirstOnlyPartition) {
  Rng rng(47);
  const auto sizes = gaussian_sizes(rng, 500, 384);
  auto run = [&](bool stealing) {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<double> batch(q, sizes);
    DevicePool pool = DevicePool::parse("k40c,k40c,k40c");
    HeteroOptions opts;
    opts.partition = Partition::FirstOnly;  // everything lands on GPU 0 ...
    opts.work_stealing = stealing;          // ... unless peers can steal
    return potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
  };
  const auto idle_peers = run(false);
  const auto stealing = run(true);
  EXPECT_EQ(idle_peers.steals, 0);
  EXPECT_GT(stealing.steals, 0);
  EXPECT_LT(stealing.seconds, idle_peers.seconds / 1.5);
  // Without stealing, peers never run a chunk.
  EXPECT_EQ(idle_peers.executors[1].chunks, 0);
  EXPECT_EQ(idle_peers.executors[2].chunks, 0);
}

TEST(HeteroScaling, ReportAccountsEveryMatrixAndChunkOnce) {
  Rng rng(53);
  const auto sizes = gaussian_sizes(rng, 300, 300);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  DevicePool pool = DevicePool::parse("cpu,k40c,p100");
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);

  int matrices = 0, chunks = 0;
  double flops = 0.0;
  for (const auto& ex : r.executors) {
    matrices += ex.matrices;
    chunks += ex.chunks;
    flops += ex.flops;
    EXPECT_GE(ex.busy_seconds, 0.0) << ex.name;
    EXPECT_LE(ex.finish_seconds, r.seconds + 1e-12) << ex.name;
  }
  EXPECT_EQ(matrices, batch.count());
  EXPECT_EQ(chunks, r.chunks);
  EXPECT_DOUBLE_EQ(flops, r.flops);
}

TEST(HeteroEnergy, PoolEnergyCoversActiveAndIdleDevices) {
  Rng rng(59);
  const auto sizes = gaussian_sizes(rng, 300, 300);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  DevicePool pool = DevicePool::parse("cpu,k40c,k40c");
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);

  EXPECT_DOUBLE_EQ(r.energy.seconds, r.seconds);
  // Floor: every device burns at least idle power for the whole makespan.
  double idle_floor = 0.0;
  for (int e = 0; e < pool.size(); ++e)
    idle_floor += pool.executor(e).power().watts(0.0) * r.seconds;
  EXPECT_GT(r.energy.joules, idle_floor * 0.99);
  EXPECT_GT(r.energy.avg_watts(), 0.0);
  double active = 0.0;
  for (const auto& ex : r.executors) active += ex.joules;
  EXPECT_LE(active, r.energy.joules);
}

TEST(HeteroDeterminism, SameSeedSameSchedule) {
  Rng rng(61);
  const auto sizes = gaussian_sizes(rng, 400, 350);
  auto run = [&](std::uint64_t seed) {
    Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
    Batch<double> batch(q, sizes);
    DevicePool pool = DevicePool::parse("cpu,k40c,p100");
    HeteroOptions opts;
    opts.steal = StealPolicy::Random;
    opts.steal_seed = seed;
    return potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  };
  const auto a = run(99);
  const auto b = run(99);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.steals, b.steals);
  ASSERT_EQ(a.executors.size(), b.executors.size());
  for (std::size_t e = 0; e < a.executors.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.executors[e].busy_seconds, b.executors[e].busy_seconds);
    EXPECT_EQ(a.executors[e].chunks, b.executors[e].chunks);
    EXPECT_EQ(a.executors[e].stolen, b.executors[e].stolen);
  }
}

// ---------------------------------------------------------------------------
// Partitioner and scheduler units
// ---------------------------------------------------------------------------

TEST(HeteroPartition, SortIsDescendingAndStable) {
  std::vector<int> n{50, 80, 50, 120, 80};
  const auto order = sort_indices_desc(n);
  EXPECT_EQ(order, (std::vector<int>{3, 1, 4, 0, 2}));
}

TEST(HeteroPartition, ChunksCoverBatchExactlyOnce) {
  Rng rng(67);
  auto sizes = gaussian_sizes(rng, 257, 300);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const auto chunks = build_chunks(sizes, 32, 12);
  ASSERT_FALSE(chunks.empty());
  EXPECT_LE(static_cast<int>(chunks.size()), 12 + 12 / 2 + 1);
  int expected_begin = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expected_begin);
    EXPECT_GT(c.count(), 0);
    EXPECT_EQ(c.max_n, sizes[static_cast<std::size_t>(c.begin)]);
    EXPECT_GT(c.flops, 0.0);
    expected_begin = c.end;
  }
  EXPECT_EQ(expected_begin, static_cast<int>(sizes.size()));
}

TEST(HeteroPartition, SingleChunkWhenTargetIsOne) {
  std::vector<int> sizes{100, 90, 80};
  const auto chunks = build_chunks(sizes, 32, 1);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].begin, 0);
  EXPECT_EQ(chunks[0].end, 3);
  EXPECT_EQ(chunks[0].max_n, 100);
}

TEST(HeteroPartition, CostModelBalancesHeterogeneousSpeeds) {
  // Executor 0 is 3x faster on every chunk; LPT should give it more chunks.
  std::vector<std::vector<double>> est{
      {1, 1, 1, 1, 1, 1, 1, 1},
      {3, 3, 3, 3, 3, 3, 3, 3},
  };
  const auto owner = assign_chunks(est, Partition::CostModel, 2);
  int fast = 0, slow = 0;
  for (int e : owner) (e == 0 ? fast : slow)++;
  EXPECT_GT(fast, slow);
  EXPECT_GT(slow, 0);  // the slow executor still contributes

  const auto rr = assign_chunks(est, Partition::RoundRobin, 2);
  EXPECT_EQ(rr, (std::vector<int>{0, 1, 0, 1, 0, 1, 0, 1}));
  const auto first = assign_chunks(est, Partition::FirstOnly, 2);
  EXPECT_EQ(first, (std::vector<int>(8, 0)));
}

TEST(HeteroScheduler, StealsFromBackOfMostLoadedVictim) {
  // Two executors, four chunks, all owned by executor 0. Executor 1 must
  // steal from the back (chunks 3, then 2) while 0 works from the front.
  ScheduleParams sp;
  sp.owner = {0, 0, 0, 0};
  sp.estimate = {{1.0, 1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0}};
  sp.executors = 2;
  std::vector<std::pair<int, int>> trace;  // (executor, chunk)
  const auto res = run_schedule(sp, [&](int e, int c) {
    trace.emplace_back(e, c);
    return 1.0;
  });
  EXPECT_DOUBLE_EQ(res.makespan, 2.0);
  EXPECT_EQ(res.executed_by, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(res.chunks_stolen[1], 2);
  // Executor 1's first steal is the trailing chunk.
  ASSERT_GE(trace.size(), 2u);
  bool saw_back_steal = false;
  for (const auto& [e, c] : trace)
    if (e == 1 && c == 3) saw_back_steal = true;
  EXPECT_TRUE(saw_back_steal);
}

TEST(HeteroScheduler, NoStealingLeavesPeersIdle) {
  ScheduleParams sp;
  sp.owner = {0, 0, 0};
  sp.estimate = {{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}};
  sp.executors = 2;
  sp.work_stealing = false;
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 3.0);
  EXPECT_EQ(res.chunks_run[1], 0);
}

TEST(HeteroScheduler, InitialClockDelaysExecutorZero) {
  ScheduleParams sp;
  sp.owner = {0, 1};
  sp.estimate = {{1.0, 1.0}, {1.0, 1.0}};
  sp.executors = 2;
  sp.initial_clock = {5.0, 0.0};
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  // Executor 1 (clock 0) acts first, runs its chunk, then steals executor
  // 0's chunk long before executor 0's clock (5.0) comes up.
  EXPECT_EQ(res.chunks_run[0], 0);
  EXPECT_EQ(res.chunks_run[1], 2);
  EXPECT_DOUBLE_EQ(res.makespan, 5.0);  // exec 0's initial clock dominates
}

// ---------------------------------------------------------------------------
// Multi-stream overlap (PR 5): stream slots, contention, death mid-flight
// ---------------------------------------------------------------------------

TEST(HeteroStreams, LowOccupancyChunksOverlap) {
  // One executor with two stream slots and low-occupancy chunks: both
  // dispatch at t=0 and run at full rate, so the makespan is one chunk
  // while the busy ledger still charges both.
  ScheduleParams sp;
  sp.owner = {0, 0};
  sp.estimate = {{1.0, 1.0}};
  sp.executors = 1;
  sp.streams = {2};
  sp.occupancy = {{0.3, 0.3}};
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 1.0);
  EXPECT_DOUBLE_EQ(res.busy[0], 2.0);
  EXPECT_DOUBLE_EQ(res.occupied[0], 1.0);  // the two intervals coincide
  EXPECT_EQ(res.max_in_flight[0], 2);
}

TEST(HeteroStreams, FullOccupancySerializesDespiteStreams) {
  // Occupancy 1.0 leaves no free share: the second chunk's rate collapses
  // to 1/2 and the makespan degenerates to the serial schedule — streams
  // cannot conjure throughput the device does not have.
  ScheduleParams sp;
  sp.owner = {0, 0};
  sp.estimate = {{1.0, 1.0}};
  sp.executors = 1;
  sp.streams = {2};
  sp.occupancy = {{1.0, 1.0}};
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 2.0);
  EXPECT_EQ(res.max_in_flight[0], 2);
}

TEST(HeteroStreams, SingleStreamParamsReproduceClassicSchedule) {
  // streams={1,1} with occupancy attached must replay the classic steal
  // schedule clock-for-clock (same trace as StealsFromBackOfMostLoadedVictim).
  ScheduleParams sp;
  sp.owner = {0, 0, 0, 0};
  sp.estimate = {{1.0, 1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0}};
  sp.executors = 2;
  sp.streams = {1, 1};
  sp.occupancy = {{0.2, 0.2, 0.2, 0.2}, {0.2, 0.2, 0.2, 0.2}};
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 2.0);
  EXPECT_EQ(res.executed_by, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(res.max_in_flight[0], 1);
}

TEST(HeteroStreams, DeathAbortsAndRedispatchesEveryChunkInFlight) {
  // Executor 0 (4 streams) dispatches all four chunks at t=0 and dies after
  // committing one: the three still in flight abort (their numerics never
  // ran), log InFlightLost, and re-dispatch to the survivor.
  ScheduleParams sp;
  sp.owner = {0, 0, 0, 0};
  sp.estimate = {{1.0, 1.0, 1.0, 1.0}, {1.0, 1.0, 1.0, 1.0}};
  sp.executors = 2;
  sp.streams = {4, 1};
  sp.occupancy = {{0.2, 0.2, 0.2, 0.2}, {1.0, 1.0, 1.0, 1.0}};
  const auto plan = fault::FaultPlan(fault::parse_fault_spec("die:exec=0,after=1"));
  sp.faults = &plan;
  std::vector<int> ran;  // chunks whose numerics actually committed
  const auto res = run_schedule(sp, [&](int, int c) {
    ran.push_back(c);
    return 1.0;
  });
  EXPECT_EQ(res.executors_lost, 1);
  EXPECT_EQ(res.lost[0], 1);
  EXPECT_EQ(res.chunks_poisoned, 0);
  EXPECT_EQ(res.executed_by, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_EQ(res.chunks_run[0], 1);
  EXPECT_EQ(res.chunks_run[1], 3);
  EXPECT_EQ(res.max_in_flight[0], 4);
  // Numerics ran exactly once per chunk — the aborted attempts never committed.
  EXPECT_EQ(static_cast<int>(ran.size()), 4);
  int in_flight_lost = 0;
  std::vector<int> lost_streams;
  for (const auto& ev : res.events)
    if (ev.kind == fault::FaultKind::InFlightLost) {
      ++in_flight_lost;
      EXPECT_EQ(ev.exec, 0);
      EXPECT_DOUBLE_EQ(ev.waste_seconds, 1.0);
      lost_streams.push_back(ev.stream);
    }
  EXPECT_EQ(in_flight_lost, 3);
  std::sort(lost_streams.begin(), lost_streams.end());
  EXPECT_EQ(lost_streams, (std::vector<int>{1, 2, 3}));  // stream 0's chunk committed
  // The wasted partial intervals stay on the busy ledger: 1 commit + 3 aborts.
  EXPECT_DOUBLE_EQ(res.busy[0], 4.0);
}

TEST(HeteroStreamsBitIdentity, EveryStreamCountMatchesSingleDevice) {
  // The acceptance criterion of the overlap work: stream counts change the
  // modelled time only — factors and info stay memcmp-identical.
  const auto sizes = test_sizes(120, 300);
  const Baseline base = single_device_baseline(sizes);
  for (int k : {1, 2, 4}) {
    const std::string suffix = ":" + std::to_string(k) + "streams";
    const std::string pools[] = {"k40c" + suffix, "k40c" + suffix + ",p100" + suffix,
                                 "cpu,k40c" + suffix, "k40c" + suffix + ",k40c"};
    for (const std::string& desc : pools) {
      DevicePool pool = DevicePool::parse(desc);
      Queue q;
      Batch<double> batch(q, sizes);
      Rng fill(7);
      batch.fill_spd(fill);
      const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
      EXPECT_GT(r.seconds, 0.0) << desc;
      expect_bit_identical(base.factors, snapshot(batch), desc.c_str());
      for (int i = 0; i < batch.count(); ++i)
        EXPECT_EQ(base.info[static_cast<std::size_t>(i)],
                  batch.info()[static_cast<std::size_t>(i)])
            << desc << ": info " << i;
    }
  }
}

TEST(HeteroStreamsBitIdentity, FaultsUnderStreamsKeepTheFactors) {
  // Executor death with chunks in flight on a 4-stream pool: the survivor
  // finishes and the factors still match the fault-free single-device run.
  const auto sizes = test_sizes(100, 280);
  const Baseline base = single_device_baseline(sizes);
  DevicePool pool = DevicePool::parse("k40c:4streams,k40c");
  pool.set_faults(fault::parse_fault_spec("die:exec=0,after=1"));
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  EXPECT_EQ(r.executors_lost, 1);
  EXPECT_TRUE(r.executors[0].lost);
  EXPECT_EQ(r.chunks_poisoned, 0);
  expect_bit_identical(base.factors, snapshot(batch), "death under streams");
  for (int i = 0; i < batch.count(); ++i)
    EXPECT_EQ(base.info[static_cast<std::size_t>(i)], batch.info()[static_cast<std::size_t>(i)]);
}

TEST(HeteroStreams, ReportCarriesStreamsAndOverlap) {
  Rng rng(71);
  const auto sizes = gaussian_sizes(rng, 240, 64);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> batch(q, sizes);
  DevicePool pool = DevicePool::parse("k40c:4streams");
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  ASSERT_EQ(r.executors.size(), 1u);
  EXPECT_EQ(r.executors[0].streams, 4);
  // Small matrices on four streams must actually overlap ...
  EXPECT_GT(r.executors[0].overlap, 1.0);
  // ... but never beyond the stream count.
  EXPECT_LE(r.executors[0].overlap, 4.0 + 1e-12);
}

// ---------------------------------------------------------------------------
// DevicePool
// ---------------------------------------------------------------------------

TEST(DevicePool, ParseBuildsTheRequestedExecutors) {
  DevicePool pool = DevicePool::parse("cpu,k40c,p100,k40c");
  EXPECT_EQ(pool.size(), 4);
  EXPECT_EQ(pool.gpu_count(), 3);
  EXPECT_TRUE(pool.has_cpu());
  EXPECT_EQ(pool.executor(0).name(), "cpu");
  EXPECT_EQ(pool.executor(1).name(), "k40c#0");
  EXPECT_EQ(pool.executor(2).name(), "p100#1");
  EXPECT_EQ(pool.executor(3).name(), "k40c#2");
  EXPECT_EQ(pool.describe(), "cpu + k40c#0 + p100#1 + k40c#2");
}

TEST(DevicePool, ParseStreamSuffixConfiguresExecutors) {
  DevicePool pool = DevicePool::parse("k40c:4streams,cpu:1streams,p100");
  EXPECT_EQ(pool.executor(0).streams(), 4);
  EXPECT_EQ(pool.executor(1).streams(), 1);
  EXPECT_EQ(pool.executor(2).streams(), 1);
  // describe() round-trips the suffix, but only where it carries information.
  EXPECT_NE(pool.describe().find("k40c#0:4streams"), std::string::npos) << pool.describe();
  EXPECT_EQ(pool.describe().find("cpu:"), std::string::npos) << pool.describe();
}

TEST(DevicePool, ParseClampsStreamsToTheDeviceLimit) {
  DevicePool pool = DevicePool::parse("k40c:999streams");
  EXPECT_EQ(pool.executor(0).streams(), sim::DeviceSpec::k40c().max_concurrent_streams);
}

TEST(DevicePool, ParseRejectsBadStreamSuffix) {
  // Malformed stream suffixes get a named InvalidArgument, never a silently
  // single-stream executor: zero/negative/missing/non-numeric counts, a
  // misspelled tail, and multi-stream requests on the single-queue cpu.
  const char* bad[] = {"k40c:0streams", "k40c:-1streams", "k40c:streams", "k40c:xstreams",
                       "k40c:4stream", "k40c:4streamsx", "k40c:", "cpu:2streams"};
  for (const char* csv : bad) {
    EXPECT_THROW((void)DevicePool::parse(csv), Error) << "accepted: '" << csv << "'";
  }
  try {
    (void)DevicePool::parse("k40c:0streams");
    FAIL() << "zero stream count accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stream count"), std::string::npos) << e.what();
  }
}

TEST(DevicePool, SetStreamsValidatesAndClamps) {
  DevicePool pool = DevicePool::parse("k40c,cpu");
  EXPECT_THROW(pool.executor(0).set_streams(0), Error);
  EXPECT_THROW(pool.executor(0).set_streams(-3), Error);
  pool.executor(0).set_streams(1000);  // silently clamps to the device limit
  EXPECT_EQ(pool.executor(0).streams(), sim::DeviceSpec::k40c().max_concurrent_streams);
  pool.executor(1).set_streams(8);  // the cpu executor clamps to its one queue
  EXPECT_EQ(pool.executor(1).streams(), 1);
}

TEST(DevicePool, ParseRejectsBadInput) {
  // Every malformed shape gets a clear InvalidArgument, never a silently
  // degenerate pool: empty lists, blank lists, stray/doubled/trailing/
  // leading commas, unknown devices, repeated "cpu".
  const char* bad[] = {"",     " ",       "\t",   ",",          "k40c,",  ",k40c",
                       "k40c,,p100", "  ,  ", "cpu,cpu", "k40c,gtx480", "cpu , cpu"};
  for (const char* csv : bad) {
    EXPECT_THROW((void)DevicePool::parse(csv), Error) << "accepted: '" << csv << "'";
  }
  // The message names the problem (not just "bad input").
  try {
    (void)DevicePool::parse("k40c,,p100");
    FAIL() << "doubled comma accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("empty device segment"), std::string::npos) << e.what();
  }
}

TEST(DevicePool, HeteroRejectsEmptyBatchAndPool) {
  DevicePool pool = DevicePool::parse("k40c");
  Queue q;
  std::vector<int> sizes{0, 0};
  Batch<double> batch(q, sizes);
  // All-empty batch: the LAPACK-like interface must refuse like the
  // single-device one does.
  EXPECT_THROW(potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch), Error);
  EXPECT_THROW(potrf_vbatched_hetero_max<double>(pool, Uplo::Lower, batch, 0), Error);
}

}  // namespace
