// Tests for the simulated device kernels: numerical agreement with the
// reference BLAS on host memory, ETM behaviour, aux kernels, and the
// composite vbatched trsm.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/kernels/aux_kernels.hpp"
#include "vbatch/kernels/fused_potrf.hpp"
#include "vbatch/kernels/gemm_vbatched.hpp"
#include "vbatch/kernels/potf2_panel.hpp"
#include "vbatch/kernels/trsm_vbatched.hpp"
#include "vbatch/kernels/trtri_diag.hpp"
#include "vbatch/sim/device.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::kernels;

struct TestBatch {
  std::vector<int> n;
  std::vector<int> lda;
  std::vector<std::vector<double>> data;
  std::vector<double*> ptrs;
  std::vector<int> info;

  explicit TestBatch(std::vector<int> sizes, std::uint64_t seed = 1) : n(std::move(sizes)) {
    Rng rng(seed);
    for (int s : n) {
      lda.push_back(std::max(1, s));
      data.emplace_back(static_cast<std::size_t>(std::max(1, s) * std::max(1, s)));
      if (s > 0) fill_spd(rng, data.back().data(), s, s);
    }
    for (auto& d : data) ptrs.push_back(d.data());
    info.assign(n.size(), 0);
  }

  [[nodiscard]] BatchArgs<double> args() const {
    return {ptrs.data(), {n.data(), n.size()}, {lda.data(), lda.size()}};
  }
};

sim::Device make_dev() { return sim::Device(sim::DeviceSpec::k40c()); }

// ---------------------------------------------------------------------------
// Aux kernels
// ---------------------------------------------------------------------------

TEST(AuxKernels, ImaxReduce) {
  auto dev = make_dev();
  std::vector<int> vals{3, 99, 7, 42, 1};
  EXPECT_EQ(imax_reduce(dev, vals), 99);
  EXPECT_GE(dev.timeline().count_with_prefix("aux_imax_reduce"), 1u);
}

TEST(AuxKernels, ImaxReduceLargeArrayTwoStages) {
  auto dev = make_dev();
  std::vector<int> vals(3000, 5);
  vals[2718] = 512;
  EXPECT_EQ(imax_reduce(dev, vals), 512);
  EXPECT_EQ(dev.timeline().count_with_prefix("aux_imax_reduce"), 2u);  // + stage2
}

TEST(AuxKernels, ShiftSizesClampsAtZero) {
  auto dev = make_dev();
  std::vector<int> in{100, 64, 10};
  std::vector<int> out(3);
  shift_sizes(dev, in, out, 64);
  EXPECT_EQ(out, (std::vector<int>{36, 0, 0}));
}

TEST(AuxKernels, BuildSizeWindowSelectsHalfOpenRange) {
  auto dev = make_dev();
  std::vector<int> sizes{10, 64, 65, 128, 96, 64};
  std::vector<int> idx;
  build_size_window(dev, sizes, 64, 128, idx);
  EXPECT_EQ(idx, (std::vector<int>{2, 3, 4}));  // sizes in (64, 128]
}

TEST(AuxKernels, CountLive) {
  auto dev = make_dev();
  std::vector<int> sizes{10, 64, 65, 128};
  EXPECT_EQ(count_live(dev, sizes, 64), 2);
  EXPECT_EQ(count_live(dev, sizes, 0), 4);
  EXPECT_EQ(count_live(dev, sizes, 128), 0);
}

TEST(AuxKernels, DisplacePtrs) {
  auto dev = make_dev();
  std::vector<double> buf(100);
  std::vector<double*> base{buf.data()};
  std::vector<int> lda{10};
  auto out = displace_ptrs<double>(dev, {base.data(), 1}, lda, 3, 4);
  EXPECT_EQ(out[0], buf.data() + 3 + 4 * 10);
}

// ---------------------------------------------------------------------------
// Fused step kernel
// ---------------------------------------------------------------------------

TEST(FusedPotrf, SharedMemAndFeasibility) {
  const auto spec = sim::DeviceSpec::k40c();
  EXPECT_EQ(fused_shared_mem(64, 16, sizeof(double)), (64 * 16 + 16 * 16) * sizeof(double));
  const int max8 = fused_max_size(spec, 8, sizeof(double));
  const int max32 = fused_max_size(spec, 32, sizeof(double));
  EXPECT_GT(max8, max32);
  EXPECT_GT(max32, 100);
  EXPECT_LE(choose_fused_nb(spec, 100, sizeof(double)), 32);
  EXPECT_GE(choose_fused_nb(spec, 700, sizeof(double)), 8);
}

// Runs the full fused factorization of a batch, step by step, like the
// driver does, and checks every factor against the reference.
void run_fused_to_completion(sim::Device& dev, TestBatch& tb, EtmMode etm, int nb) {
  const int max_n = *std::max_element(tb.n.begin(), tb.n.end());
  FusedStepArgs<double> args;
  args.batch = tb.args();
  args.uplo = Uplo::Lower;
  args.nb = nb;
  args.etm = etm;
  args.info = tb.info;
  for (int step = 0; step * nb < max_n; ++step) {
    args.step = step;
    args.block_threads = round_up_warp(dev.spec(), max_n - step * nb);
    launch_fused_step(dev, args);
  }
}

class FusedEtmTest : public ::testing::TestWithParam<EtmMode> {};

TEST_P(FusedEtmTest, FactorsMatchReference) {
  auto dev = make_dev();
  TestBatch tb({5, 33, 64, 1, 17, 48}, 7);
  TestBatch ref = tb;  // deep copy
  run_fused_to_completion(dev, tb, GetParam(), 16);

  for (std::size_t i = 0; i < tb.n.size(); ++i) {
    EXPECT_EQ(tb.info[i], 0);
    const int n = tb.n[i];
    MatrixView<double> expect(ref.data[i].data(), n, n, n);
    ASSERT_EQ(blas::potrf<double>(Uplo::Lower, expect, 16), 0);
    for (int c = 0; c < n; ++c)
      for (int r = c; r < n; ++r)
        EXPECT_NEAR(tb.data[i][static_cast<std::size_t>(r + c * n)], expect(r, c), 1e-10)
            << "matrix " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Etms, FusedEtmTest,
                         ::testing::Values(EtmMode::Classic, EtmMode::Aggressive));

TEST(FusedPotrf, UpperFactorsMatchReference) {
  auto dev = make_dev();
  TestBatch tb({24, 40}, 11);
  TestBatch ref = tb;
  const int max_n = 40, nb = 8;
  FusedStepArgs<double> args;
  args.batch = tb.args();
  args.uplo = Uplo::Upper;
  args.nb = nb;
  args.etm = EtmMode::Aggressive;
  args.info = tb.info;
  for (int step = 0; step * nb < max_n; ++step) {
    args.step = step;
    args.block_threads = round_up_warp(dev.spec(), max_n - step * nb);
    launch_fused_step(dev, args);
  }
  for (std::size_t i = 0; i < tb.n.size(); ++i) {
    const int n = tb.n[i];
    MatrixView<double> expect(ref.data[i].data(), n, n, n);
    ASSERT_EQ(blas::potrf<double>(Uplo::Upper, expect, nb), 0);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r <= c; ++r)
        EXPECT_NEAR(tb.data[i][static_cast<std::size_t>(r + c * n)], expect(r, c), 1e-10);
  }
}

TEST(FusedPotrf, EtmExitsAreCountedForFinishedMatrices) {
  auto dev = make_dev();
  TestBatch tb({8, 64}, 3);
  FusedStepArgs<double> args;
  args.batch = tb.args();
  args.nb = 8;
  args.etm = EtmMode::Classic;
  args.info = tb.info;
  args.step = 2;  // matrix of size 8 finished after step 1
  args.block_threads = 64;
  launch_fused_step(dev, args);
  EXPECT_EQ(dev.timeline().records().back().early_exits, 1);
}

TEST(FusedPotrf, NonSpdMatrixSetsGlobalInfoAndSkipsFurtherSteps) {
  auto dev = make_dev();
  TestBatch tb({32, 32}, 13);
  // Corrupt matrix 1 beyond the first panel: fails at step 2 (j=16).
  tb.data[1][static_cast<std::size_t>(20 + 20 * 32)] = -1e6;
  run_fused_to_completion(dev, tb, EtmMode::Aggressive, 16);
  EXPECT_EQ(tb.info[0], 0);
  EXPECT_EQ(tb.info[1], 21);  // 1-based global index of the bad pivot
}

TEST(FusedPotrf, ActiveListRestrictsLaunch) {
  auto dev = make_dev();
  TestBatch tb({16, 16, 16}, 17);
  TestBatch ref = tb;
  std::vector<int> active{1};
  FusedStepArgs<double> args;
  args.batch = tb.args();
  args.active = active;
  args.nb = 16;
  args.etm = EtmMode::Aggressive;
  args.info = tb.info;
  args.step = 0;
  args.block_threads = 32;
  launch_fused_step(dev, args);
  // Matrix 1 factored; matrices 0 and 2 untouched.
  EXPECT_NE(tb.data[1], ref.data[1]);
  EXPECT_EQ(tb.data[0], ref.data[0]);
  EXPECT_EQ(tb.data[2], ref.data[2]);
  EXPECT_EQ(dev.timeline().records().back().grid_blocks, 1);
}

// ---------------------------------------------------------------------------
// potf2 panel kernel
// ---------------------------------------------------------------------------

TEST(Potf2Panel, FactorsDiagonalBlocksOnly) {
  auto dev = make_dev();
  TestBatch tb({50, 80, 20}, 19);
  TestBatch ref = tb;
  Potf2PanelArgs<double> args;
  args.batch = tb.args();
  args.offset = 0;
  args.NB = 64;
  args.nb_inner = 16;
  args.info = tb.info;
  launch_potf2_panel(dev, args);

  for (std::size_t i = 0; i < tb.n.size(); ++i) {
    const int n = tb.n[i];
    const int ib = std::min(64, n);
    MatrixView<double> expect(ref.data[i].data(), n, n, n);
    ASSERT_EQ(blas::potrf<double>(Uplo::Lower, expect.block(0, 0, ib, ib), 16), 0);
    for (int c = 0; c < ib; ++c)
      for (int r = c; r < ib; ++r)
        EXPECT_NEAR(tb.data[i][static_cast<std::size_t>(r + c * n)], expect(r, c), 1e-10);
    // Below the panel must be untouched.
    for (int c = 0; c < ib; ++c)
      for (int r = ib; r < n; ++r)
        EXPECT_DOUBLE_EQ(tb.data[i][static_cast<std::size_t>(r + c * n)],
                         ref.data[i][static_cast<std::size_t>(r + c * n)]);
  }
}

TEST(Potf2Panel, OffsetPastMatrixTriggersEtm) {
  auto dev = make_dev();
  TestBatch tb({16, 100}, 23);
  Potf2PanelArgs<double> args;
  args.batch = tb.args();
  args.offset = 64;
  args.NB = 64;
  args.nb_inner = 16;
  args.info = tb.info;
  launch_potf2_panel(dev, args);
  // The panel is a loop of fused-step launches (§III-E1). Matrix 0 (n=16,
  // fully factorized before this offset) exits in every step; matrix 1
  // (remaining panel of 36) also exits once its internal steps run out.
  ASSERT_GE(dev.timeline().size(), 2u);
  EXPECT_EQ(dev.timeline().records().front().early_exits, 1);
  EXPECT_EQ(dev.timeline().records().back().early_exits, 2);
}

// ---------------------------------------------------------------------------
// vbatched gemm / syrk
// ---------------------------------------------------------------------------

TEST(GemmVbatched, MatchesReferencePerMatrix) {
  auto dev = make_dev();
  Rng rng(29);
  const std::vector<int> m{33, 70, 1}, n{65, 20, 1}, k{16, 50, 1};
  std::vector<std::vector<double>> abuf, bbuf, cbuf, cref;
  std::vector<double*> ap, bp, cp;
  std::vector<int> lda, ldb, ldc;
  for (std::size_t i = 0; i < m.size(); ++i) {
    abuf.emplace_back(static_cast<std::size_t>(m[i] * k[i]));
    bbuf.emplace_back(static_cast<std::size_t>(k[i] * n[i]));
    cbuf.emplace_back(static_cast<std::size_t>(m[i] * n[i]));
    fill_general(rng, abuf.back().data(), m[i], k[i], m[i]);
    fill_general(rng, bbuf.back().data(), k[i], n[i], k[i]);
    fill_general(rng, cbuf.back().data(), m[i], n[i], m[i]);
    cref.push_back(cbuf.back());
    lda.push_back(m[i]);
    ldb.push_back(k[i]);
    ldc.push_back(m[i]);
  }
  for (std::size_t i = 0; i < m.size(); ++i) {
    ap.push_back(abuf[i].data());
    bp.push_back(bbuf[i].data());
    cp.push_back(cbuf[i].data());
  }

  GemmVbatchedArgs<double> args;
  args.m = m;
  args.n = n;
  args.k = k;
  args.max_m = 70;
  args.max_n = 65;
  args.alpha = -1.0;
  args.beta = 2.0;
  args.a = ap.data();
  args.lda = lda;
  args.b = bp.data();
  args.ldb = ldb;
  args.c = cp.data();
  args.ldc = ldc;
  launch_gemm_vbatched(dev, args);

  for (std::size_t i = 0; i < m.size(); ++i) {
    MatrixView<double> expect(cref[i].data(), m[i], n[i], m[i]);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, -1.0,
                       ConstMatrixView<double>(abuf[i].data(), m[i], k[i], m[i]),
                       ConstMatrixView<double>(bbuf[i].data(), k[i], n[i], k[i]), 2.0, expect);
    for (int c = 0; c < n[i]; ++c)
      for (int r = 0; r < m[i]; ++r)
        EXPECT_NEAR(cbuf[i][static_cast<std::size_t>(r + c * m[i])], expect(r, c), 1e-11)
            << "matrix " << i;
  }
}

TEST(SyrkVbatched, LowerUpdateMatchesReference) {
  auto dev = make_dev();
  Rng rng(31);
  const std::vector<int> n{40, 100, 7}, k{16, 16, 16};
  std::vector<std::vector<double>> abuf, cbuf, cref;
  std::vector<double*> ap, cp;
  std::vector<int> lda, ldc;
  for (std::size_t i = 0; i < n.size(); ++i) {
    abuf.emplace_back(static_cast<std::size_t>(n[i] * k[i]));
    cbuf.emplace_back(static_cast<std::size_t>(n[i] * n[i]));
    fill_general(rng, abuf.back().data(), n[i], k[i], n[i]);
    fill_general(rng, cbuf.back().data(), n[i], n[i], n[i]);
    cref.push_back(cbuf.back());
    lda.push_back(n[i]);
    ldc.push_back(n[i]);
  }
  for (std::size_t i = 0; i < n.size(); ++i) {
    ap.push_back(abuf[i].data());
    cp.push_back(cbuf[i].data());
  }

  SyrkVbatchedArgs<double> args;
  args.uplo = Uplo::Lower;
  args.n = n;
  args.k = k;
  args.max_n = 100;
  args.alpha = -1.0;
  args.beta = 1.0;
  args.a = ap.data();
  args.lda = lda;
  args.c = cp.data();
  args.ldc = ldc;
  launch_syrk_vbatched(dev, args);

  for (std::size_t i = 0; i < n.size(); ++i) {
    MatrixView<double> expect(cref[i].data(), n[i], n[i], n[i]);
    blas::syrk<double>(Uplo::Lower, Trans::NoTrans, -1.0,
                       ConstMatrixView<double>(abuf[i].data(), n[i], k[i], n[i]), 1.0, expect);
    for (int c = 0; c < n[i]; ++c)
      for (int r = 0; r < n[i]; ++r)
        EXPECT_NEAR(cbuf[i][static_cast<std::size_t>(r + c * n[i])], expect(r, c), 1e-11)
            << "matrix " << i << " at " << r << "," << c;
  }
}

TEST(SyrkVbatched, StreamedMatchesVbatched) {
  Rng rng(37);
  const std::vector<int> n{30, 90}, k{24, 24};
  auto build = [&](std::vector<std::vector<double>>& a, std::vector<std::vector<double>>& c,
                   std::vector<double*>& ap, std::vector<double*>& cp) {
    Rng local(37);
    for (std::size_t i = 0; i < n.size(); ++i) {
      a.emplace_back(static_cast<std::size_t>(n[i] * k[i]));
      c.emplace_back(static_cast<std::size_t>(n[i] * n[i]));
      fill_general(local, a.back().data(), n[i], k[i], n[i]);
      fill_general(local, c.back().data(), n[i], n[i], n[i]);
    }
    for (std::size_t i = 0; i < n.size(); ++i) {
      ap.push_back(a[i].data());
      cp.push_back(c[i].data());
    }
  };
  std::vector<std::vector<double>> a1, c1, a2, c2;
  std::vector<double*> ap1, cp1, ap2, cp2;
  build(a1, c1, ap1, cp1);
  build(a2, c2, ap2, cp2);
  std::vector<int> lda{30, 90};

  SyrkVbatchedArgs<double> args;
  args.uplo = Uplo::Lower;
  args.n = n;
  args.k = k;
  args.max_n = 90;
  args.alpha = -1.0;
  args.beta = 1.0;
  args.lda = lda;
  args.ldc = lda;

  auto dev1 = make_dev();
  args.a = ap1.data();
  args.c = cp1.data();
  launch_syrk_vbatched(dev1, args);

  auto dev2 = make_dev();
  args.a = ap2.data();
  args.c = cp2.data();
  launch_syrk_streamed(dev2, args, 8);

  EXPECT_EQ(c1, c2);
}

// ---------------------------------------------------------------------------
// trtri + composite trsm
// ---------------------------------------------------------------------------

TEST(TrtriDiag, InvertsDiagonalBlocks) {
  auto dev = make_dev();
  Rng rng(41);
  const int NB = 64;
  std::vector<double> panel(static_cast<std::size_t>(NB * NB));
  fill_general(rng, panel.data(), NB, NB, NB);
  for (int d = 0; d < NB; ++d) panel[static_cast<std::size_t>(d + d * NB)] = 5.0 + d;
  std::vector<double> inv(static_cast<std::size_t>(NB * NB), 0.0);

  std::vector<double*> a{panel.data()};
  std::vector<double*> iv{inv.data()};
  std::vector<int> lda{NB}, ib{NB};
  TrtriDiagArgs<double> args;
  args.a = a.data();
  args.lda = lda;
  args.ib = ib;
  args.NB = NB;
  args.inv = iv.data();
  args.inv_ld = NB;
  launch_trtri_diag(dev, args);

  // Each 32×32 diagonal block of inv must invert the matching block of panel.
  for (int b = 0; b < NB / 32; ++b) {
    for (int i = 0; i < 32; ++i)
      for (int j = 0; j <= i; ++j) {
        double sum = 0.0;
        for (int l = j; l <= i; ++l) {
          sum += panel[static_cast<std::size_t>((b * 32 + i) + (b * 32 + l) * NB)] *
                 inv[static_cast<std::size_t>((b * 32 + l) + (b * 32 + j) * NB)];
        }
        EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-10);
      }
  }
}

TEST(TrsmVbatched, SolvesLowerRightTranspose) {
  auto dev = make_dev();
  Rng rng(43);
  const int NB = 64;
  const std::vector<int> mrows{50, 90, 0};  // matrix 2 inactive
  std::vector<std::vector<double>> l11s, bs, brefs;
  std::vector<double*> lp, bp, ip;
  std::vector<std::vector<double>> invs;
  std::vector<int> lda, ldb, ib;
  for (std::size_t i = 0; i < mrows.size(); ++i) {
    l11s.emplace_back(static_cast<std::size_t>(NB * NB));
    fill_general(rng, l11s.back().data(), NB, NB, NB);
    for (int d = 0; d < NB; ++d) l11s.back()[static_cast<std::size_t>(d + d * NB)] = 4.0 + d % 7;
    const int m = std::max(1, mrows[i]);
    bs.emplace_back(static_cast<std::size_t>(m * NB));
    fill_general(rng, bs.back().data(), m, NB, m);
    brefs.push_back(bs.back());
    invs.emplace_back(static_cast<std::size_t>(NB * NB), 0.0);
    lda.push_back(NB);
    ldb.push_back(m);
    ib.push_back(mrows[i] > 0 ? NB : 0);
  }
  for (std::size_t i = 0; i < mrows.size(); ++i) {
    lp.push_back(l11s[i].data());
    bp.push_back(bs[i].data());
    ip.push_back(invs[i].data());
  }

  TrsmVbatchedArgs<double> args;
  args.uplo = Uplo::Lower;
  args.a = lp.data();
  args.lda = lda;
  args.ib = ib;
  args.b = bp.data();
  args.ldb = ldb;
  args.m = mrows;
  args.max_ib = NB;
  args.max_m = 90;
  args.inv = ip.data();
  args.inv_ld = NB;
  launch_trsm_vbatched(dev, args);

  for (std::size_t i = 0; i < mrows.size(); ++i) {
    const int m = mrows[i];
    if (m == 0) {
      EXPECT_EQ(bs[i], brefs[i]);  // inactive matrix untouched
      continue;
    }
    MatrixView<double> expect(brefs[i].data(), m, NB, m);
    blas::trsm<double>(Side::Right, Uplo::Lower, Trans::Trans, Diag::NonUnit, 1.0,
                       ConstMatrixView<double>(l11s[i].data(), NB, NB, NB), expect);
    for (int c = 0; c < NB; ++c)
      for (int r = 0; r < m; ++r)
        EXPECT_NEAR(bs[i][static_cast<std::size_t>(r + c * m)], expect(r, c), 1e-9)
            << "matrix " << i;
  }
}

TEST(TrsmVbatched, SolvesUpperLeftTranspose) {
  auto dev = make_dev();
  Rng rng(47);
  const int NB = 64;
  const int m = 70;
  std::vector<double> u11(static_cast<std::size_t>(NB * NB));
  fill_general(rng, u11.data(), NB, NB, NB);
  for (int d = 0; d < NB; ++d) u11[static_cast<std::size_t>(d + d * NB)] = 6.0 + d % 5;
  std::vector<double> b(static_cast<std::size_t>(NB * m));
  fill_general(rng, b.data(), NB, m, NB);
  auto bref = b;
  std::vector<double> inv(static_cast<std::size_t>(NB * NB), 0.0);

  std::vector<double*> up{u11.data()}, bp{b.data()}, ip{inv.data()};
  std::vector<int> lda{NB}, ldb{NB}, ib{NB}, mr{m};
  TrsmVbatchedArgs<double> args;
  args.uplo = Uplo::Upper;
  args.a = up.data();
  args.lda = lda;
  args.ib = ib;
  args.b = bp.data();
  args.ldb = ldb;
  args.m = mr;
  args.max_ib = NB;
  args.max_m = m;
  args.inv = ip.data();
  args.inv_ld = NB;
  launch_trsm_vbatched(dev, args);

  MatrixView<double> expect(bref.data(), NB, m, NB);
  blas::trsm<double>(Side::Left, Uplo::Upper, Trans::Trans, Diag::NonUnit, 1.0,
                     ConstMatrixView<double>(u11.data(), NB, NB, NB), expect);
  for (int c = 0; c < m; ++c)
    for (int r = 0; r < NB; ++r)
      EXPECT_NEAR(b[static_cast<std::size_t>(r + c * NB)], expect(r, c), 1e-9);
}

}  // namespace
