// vbatch::service tests: trace-parser hardening, DRR fairness, coalescer
// edge cases, deterministic virtual-time replay (memcmp sweeps across pools,
// stream counts and tenant counts), per-request fault poisoning, posv
// correctness, and the wall-clock Service front door.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <vector>

#include "vbatch/service/coalescer.hpp"
#include "vbatch/service/fairness.hpp"
#include "vbatch/service/request_queue.hpp"
#include "vbatch/service/service.hpp"
#include "vbatch/service/trace.hpp"
#include "vbatch/util/error.hpp"

using namespace vbatch;
using namespace vbatch::service;

namespace {

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    (void)parse_trace(text);
    FAIL() << "expected InvalidArgument for: " << text;
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidArgument) << text;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

Request make_request(std::uint64_t id, const std::string& tenant, std::vector<int> sizes,
                     Op op = Op::Potrf, Precision prec = Precision::Double) {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.op = op;
  r.prec = prec;
  r.sizes = std::move(sizes);
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Trace parser (satellite: hardening matrix in the DevicePool::parse style)
// ---------------------------------------------------------------------------

TEST(ServiceTrace, ParsesTenantsRequestsAndComments) {
  const Trace t = parse_trace(
      "# demo trace\n"
      "tenant bursty weight=2.5\n"
      "tenant quiet\n"
      "req id=2 t=0.002 tenant=quiet op=posv prec=s n=24 nrhs=4 seed=7\n"
      "req id=1 t=0.001 tenant=bursty op=potrf prec=d n=32,48,64\n"
      "\n");
  ASSERT_EQ(t.count(), 2);
  ASSERT_EQ(t.tenants.size(), 2u);
  EXPECT_EQ(t.tenants[0].first, "bursty");
  EXPECT_DOUBLE_EQ(t.tenants[0].second, 2.5);
  EXPECT_DOUBLE_EQ(t.tenants[1].second, 1.0);
  // Requests are replay-ordered by (t, id).
  EXPECT_EQ(t.requests[0].id, 1u);
  EXPECT_EQ(t.requests[0].op, Op::Potrf);
  EXPECT_EQ(t.requests[0].sizes, (std::vector<int>{32, 48, 64}));
  EXPECT_EQ(t.requests[1].id, 2u);
  EXPECT_EQ(t.requests[1].op, Op::Posv);
  EXPECT_EQ(t.requests[1].prec, Precision::Single);
  EXPECT_EQ(t.requests[1].nrhs, 4);
  EXPECT_EQ(t.requests[1].seed, 7u);
}

TEST(ServiceTrace, FormatRoundTrips) {
  TraceGenConfig cfg;
  cfg.count = 40;
  cfg.tenants = 3;
  cfg.mix_ops = true;
  cfg.mix_precisions = true;
  const Trace a = make_trace(cfg);
  const Trace b = parse_trace(format_trace(a));
  ASSERT_EQ(a.count(), b.count());
  ASSERT_EQ(a.tenants, b.tenants);
  for (int i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].tenant, b.requests[i].tenant);
    EXPECT_EQ(a.requests[i].op, b.requests[i].op);
    EXPECT_EQ(a.requests[i].prec, b.requests[i].prec);
    EXPECT_EQ(a.requests[i].sizes, b.requests[i].sizes);
    EXPECT_EQ(a.requests[i].nrhs, b.requests[i].nrhs);
  }
}

TEST(ServiceTrace, RejectsMalformedInput) {
  const char* ok = "req id=1 t=0 tenant=a op=potrf prec=d n=8\n";
  expect_parse_error("frobnicate id=1\n", "unknown directive");
  expect_parse_error("tenant\n", "needs a name");
  expect_parse_error("tenant bad/slash\n", "bad tenant id");
  expect_parse_error("tenant a\ntenant a\n", "duplicate tenant");
  expect_parse_error("tenant a weight=0\n", "weight must be positive");
  expect_parse_error("tenant a weight=-2\n", "weight must be positive");
  expect_parse_error("tenant a weight=fat\n", "finite number");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=8 junk\n", "key=value");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=8 color=red\n",
                     "unknown field");
  expect_parse_error("req id=1 id=2 t=0 tenant=a op=potrf prec=d n=8\n",
                     "duplicate field");
  expect_parse_error("req t=0 tenant=a op=potrf prec=d n=8\n", "missing required field");
  expect_parse_error("req id=x t=0 tenant=a op=potrf prec=d n=8\n",
                     "non-negative integer");
  expect_parse_error(std::string(ok) + "req id=1 t=0 tenant=a op=potrf prec=d n=8\n",
                     "duplicate request id");
  expect_parse_error("req id=1 t=-0.5 tenant=a op=potrf prec=d n=8\n", "non-negative");
  expect_parse_error("req id=1 t=0 tenant=b@d op=potrf prec=d n=8\n", "bad tenant id");
  expect_parse_error("req id=1 t=0 tenant=a op=getrf prec=d n=8\n", "unknown op");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=q n=8\n", "unknown precision");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=\n", "at least one");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=0\n", "must be positive");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=-5\n", "must be positive");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=12-3\n", "bad matrix size");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=8,,8\n", "bad matrix size");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=999999\n",
                     "implausibly large");
  expect_parse_error("req id=1 t=0 tenant=a op=posv prec=d n=8 nrhs=0\n",
                     "positive integer");
  expect_parse_error("req id=1 t=0 tenant=a op=posv prec=d n=8 nrhs=1.5\n",
                     "positive integer");
  expect_parse_error("req id=1 t=0 tenant=a op=potrf prec=d n=8 seed=-3\n",
                     "non-negative integer");
}

TEST(ServiceTrace, ErrorsNameTheLine) {
  expect_parse_error("tenant a\n\n# fine\nreq id=1 t=0 tenant=a op=nope prec=d n=8\n",
                     "trace:4:");
}

TEST(ServiceTrace, LateTenantDeclarationUpdatesWeight) {
  const Trace t = parse_trace(
      "req id=1 t=0 tenant=a op=potrf prec=d n=8\n"
      "tenant a weight=3\n");
  ASSERT_EQ(t.tenants.size(), 1u);
  EXPECT_DOUBLE_EQ(t.tenants[0].second, 3.0);
}

TEST(ServiceTrace, LoadTraceRejectsMissingFile) {
  EXPECT_THROW((void)load_trace("/nonexistent/trace.txt"), Error);
}

// ---------------------------------------------------------------------------
// DRR fairness
// ---------------------------------------------------------------------------

TEST(ServiceFairness, ZeroOrNegativeWeightThrows) {
  DrrScheduler drr;
  EXPECT_THROW(drr.set_weight("a", 0.0), Error);
  EXPECT_THROW(drr.set_weight("a", -1.0), Error);
  Coalescer co;
  EXPECT_THROW(co.set_weight("a", 0.0), Error);
}

TEST(ServiceFairness, SingleTenantDrainsFifo) {
  DrrScheduler drr;
  for (std::uint64_t i = 1; i <= 5; ++i) drr.push("solo", DrrItem{i, 100.0, 64.0, 1});
  const auto ids = drr.admit(DrrCaps{});
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(drr.empty());
}

TEST(ServiceFairness, WeightsShapeAdmissionUnderCaps) {
  // Equal-cost items, weights 2:1, room for 6 of 12 → heavy gets ~2x.
  DrrScheduler drr;
  drr.set_weight("heavy", 2.0);
  drr.set_weight("light", 1.0);
  for (std::uint64_t i = 0; i < 6; ++i) {
    drr.push("heavy", DrrItem{100 + i, 100.0, 64.0, 1});
    drr.push("light", DrrItem{200 + i, 100.0, 64.0, 1});
  }
  const auto ids = drr.admit(DrrCaps{6, 0.0}, 50.0);
  ASSERT_EQ(ids.size(), 6u);
  const auto heavy = std::count_if(ids.begin(), ids.end(),
                                   [](std::uint64_t id) { return id < 200; });
  EXPECT_EQ(heavy, 4);
  EXPECT_EQ(drr.pending(), 6);
}

TEST(ServiceFairness, OversizedFirstCandidateAdmittedAlone) {
  DrrScheduler drr;
  drr.push("a", DrrItem{1, 100.0, 1e9, 10});
  drr.push("a", DrrItem{2, 100.0, 64.0, 1});
  const auto ids = drr.admit(DrrCaps{4, 0.0});
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(drr.pending(), 1);
}

TEST(ServiceFairness, CursorPersistsAcrossFlushes) {
  DrrScheduler drr;
  for (std::uint64_t i = 0; i < 4; ++i) {
    drr.push("a", DrrItem{10 + i, 100.0, 64.0, 1});
    drr.push("b", DrrItem{20 + i, 100.0, 64.0, 1});
  }
  const auto first = drr.admit(DrrCaps{2, 0.0}, 100.0);
  const auto second = drr.admit(DrrCaps{2, 0.0}, 100.0);
  ASSERT_EQ(first.size(), 2u);
  ASSERT_EQ(second.size(), 2u);
  // Four equal-weight admissions alternate a/b overall: 2 each.
  std::vector<std::uint64_t> all(first);
  all.insert(all.end(), second.begin(), second.end());
  EXPECT_EQ(std::count_if(all.begin(), all.end(),
                          [](std::uint64_t id) { return id < 20; }),
            2);
}

// ---------------------------------------------------------------------------
// Coalescer edge cases (satellite)
// ---------------------------------------------------------------------------

TEST(ServiceCoalescer, SingleRequestFlushesAloneOnBudget) {
  Coalescer co(CoalescerConfig{1e-3, 0, 0.0, 0.0});
  co.add(make_request(1, "a", {32}), 0.0);
  EXPECT_FALSE(co.pop_ready(0.5e-3).has_value());  // budget not yet expired
  auto flush = co.pop_ready(1e-3);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->reason, FlushReason::Budget);
  ASSERT_EQ(flush->admitted.size(), 1u);
  EXPECT_EQ(flush->admitted[0].id, 1u);
  EXPECT_TRUE(co.empty());
}

TEST(ServiceCoalescer, CountCapFlushPrecedesBudgetExpiry) {
  Coalescer co(CoalescerConfig{1.0, 4, 0.0, 0.0});
  co.add(make_request(1, "a", {16, 16}), 0.0);
  EXPECT_FALSE(co.pop_ready(0.0).has_value());  // 2 < cap, budget far away
  co.add(make_request(2, "a", {16, 16}), 1e-4);
  EXPECT_EQ(co.next_ready(), 1e-4);  // the cap crossing, not t=1.0
  auto flush = co.pop_ready(1e-4);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->reason, FlushReason::CountCap);
  EXPECT_EQ(flush->admitted.size(), 2u);
}

TEST(ServiceCoalescer, BytesCapFlushes) {
  Coalescer co(CoalescerConfig{1.0, 0, 3000.0, 0.0});
  co.add(make_request(1, "a", {16}), 0.0);  // 16*16*8 = 2048 bytes
  EXPECT_FALSE(co.pop_ready(0.0).has_value());
  co.add(make_request(2, "a", {16}), 0.0);  // 4096 >= 3000 → cap
  auto flush = co.pop_ready(0.0);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->reason, FlushReason::BytesCap);
  // The cap admits only what fits: one 2048-byte request, the other waits.
  EXPECT_EQ(flush->admitted.size(), 1u);
  EXPECT_EQ(co.depth(), 1);
}

TEST(ServiceCoalescer, IncompatiblePrecisionOrOpNeverMerges) {
  Coalescer co(CoalescerConfig{0.0, 0, 0.0, 0.0});
  co.add(make_request(1, "a", {16}, Op::Potrf, Precision::Double), 0.0);
  co.add(make_request(2, "a", {16}, Op::Potrf, Precision::Single), 0.0);
  co.add(make_request(3, "a", {16}, Op::Posv, Precision::Double), 0.0);
  std::vector<Coalescer::Flush> flushes;
  while (auto f = co.pop_ready(0.0)) flushes.push_back(std::move(*f));
  ASSERT_EQ(flushes.size(), 3u);
  for (const auto& f : flushes) {
    ASSERT_EQ(f.admitted.size(), 1u);
    EXPECT_EQ(f.admitted[0].op, f.key.op);
    EXPECT_EQ(f.admitted[0].prec, f.key.prec);
  }
}

TEST(ServiceCoalescer, CompatibleRequestsMergeWithinBudget) {
  Coalescer co(CoalescerConfig{1e-3, 0, 0.0, 0.0});
  co.add(make_request(1, "a", {16}), 0.0);
  co.add(make_request(2, "b", {24}), 0.5e-3);
  auto flush = co.pop_ready(1e-3);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->admitted.size(), 2u);
  EXPECT_TRUE(co.empty());
}

TEST(ServiceCoalescer, ForceDrainFlushesEverything) {
  Coalescer co(CoalescerConfig{10.0, 0, 0.0, 0.0});
  co.add(make_request(1, "a", {16}), 0.0);
  EXPECT_FALSE(co.pop_ready(0.0).has_value());
  auto flush = co.pop_ready(0.0, /*force=*/true);
  ASSERT_TRUE(flush.has_value());
  EXPECT_EQ(flush->reason, FlushReason::Drain);
  EXPECT_TRUE(co.empty());
  EXPECT_TRUE(std::isinf(co.next_ready()));
}

TEST(ServiceCoalescer, EmptyRequestRejected) {
  Coalescer co;
  EXPECT_THROW(co.add(make_request(1, "a", {}), 0.0), Error);
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(ServiceRequestQueue, PushDrainClose) {
  RequestQueue q;
  q.push(make_request(1, "a", {8}));
  q.push(make_request(2, "a", {8}));
  EXPECT_EQ(q.depth(), 2);
  const auto got = q.drain();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_TRUE(q.drain().empty());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_THROW(q.push(make_request(3, "a", {8})), Error);
}

TEST(ServiceRequestQueue, WaitDrainWakesOnPush) {
  RequestQueue q;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(make_request(7, "a", {8}));
  });
  const auto got = q.wait_drain(5.0);  // must wake well before 5 s
  producer.join();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 7u);
}

// ---------------------------------------------------------------------------
// Virtual-time replay
// ---------------------------------------------------------------------------

namespace {

ServiceConfig replay_config(double budget = 1e-3) {
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = budget;
  return cfg;
}

/// Field-by-field bit comparison of two reports (doubles compared as bits:
/// the replay promises bit-for-bit determinism, not approximate equality).
void expect_reports_identical(const ServiceReport& a, const ServiceReport& b) {
  auto bits = [](double x) {
    std::uint64_t u = 0;
    std::memcpy(&u, &x, sizeof(u));
    return u;
  };
  ASSERT_EQ(a.requests, b.requests);
  ASSERT_EQ(a.batches, b.batches);
  EXPECT_EQ(bits(a.makespan), bits(b.makespan));
  EXPECT_EQ(bits(a.flops), bits(b.flops));
  EXPECT_EQ(bits(a.joules), bits(b.joules));
  EXPECT_EQ(bits(a.mean_queue_depth), bits(b.mean_queue_depth));
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(bits(a.p50_latency), bits(b.p50_latency));
  EXPECT_EQ(bits(a.p99_latency), bits(b.p99_latency));
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.expired, b.expired);
  EXPECT_EQ(a.slo_total, b.slo_total);
  EXPECT_EQ(a.slo_met, b.slo_met);
  EXPECT_EQ(bits(a.goodput_flops), bits(b.goodput_flops));
  EXPECT_EQ(bits(a.capacity_gflops), bits(b.capacity_gflops));
  ASSERT_EQ(a.batch_log.size(), b.batch_log.size());
  for (std::size_t i = 0; i < a.batch_log.size(); ++i) {
    EXPECT_EQ(a.batch_log[i].reason, b.batch_log[i].reason);
    EXPECT_EQ(a.batch_log[i].requests, b.batch_log[i].requests);
    EXPECT_EQ(bits(a.batch_log[i].dispatch_time), bits(b.batch_log[i].dispatch_time));
    EXPECT_EQ(bits(a.batch_log[i].seconds), bits(b.batch_log[i].seconds));
    EXPECT_EQ(bits(a.batch_log[i].joules), bits(b.batch_log[i].joules));
  }
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    const RequestOutcome& x = a.outcomes[i];
    const RequestOutcome& y = b.outcomes[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.status, y.status);
    EXPECT_EQ(x.info, y.info);
    EXPECT_EQ(x.batch_id, y.batch_id);
    EXPECT_EQ(bits(x.dispatch_time), bits(y.dispatch_time));
    EXPECT_EQ(bits(x.complete_time), bits(y.complete_time));
    EXPECT_EQ(bits(x.joules), bits(y.joules));
    ASSERT_EQ(x.factors.size(), y.factors.size());
    for (std::size_t j = 0; j < x.factors.size(); ++j) {
      ASSERT_EQ(x.factors[j].size(), y.factors[j].size());
      EXPECT_EQ(std::memcmp(x.factors[j].data(), y.factors[j].data(),
                            x.factors[j].size()),
                0);
    }
  }
}

}  // namespace

TEST(ServiceReplay, ServesEveryRequestAndCoalesces) {
  TraceGenConfig gen;
  gen.count = 60;
  gen.tenants = 3;
  gen.rate = 200000.0;  // dense arrivals → deep merging
  const Trace trace = make_trace(gen);
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, trace, replay_config());
  EXPECT_EQ(report.requests, 60);
  EXPECT_EQ(static_cast<int>(report.outcomes.size()), 60);
  EXPECT_GT(report.batches, 0);
  EXPECT_GT(report.coalescing_ratio, 1.5);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.p99_latency, 0.0);
  EXPECT_GE(report.p99_latency, report.p50_latency);
  EXPECT_GT(report.mean_queue_depth, 0.0);
  for (const RequestOutcome& o : report.outcomes) {
    EXPECT_EQ(o.status, RequestStatus::Ok);
    EXPECT_GE(o.dispatch_time, o.submit_time);
    EXPECT_GT(o.complete_time, o.dispatch_time);
  }
  // Every id served exactly once.
  std::vector<std::uint64_t> ids;
  for (const RequestOutcome& o : report.outcomes) ids.push_back(o.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(ServiceReplay, BatchCapBoundsLaunches) {
  TraceGenConfig gen;
  gen.count = 30;
  gen.rate = 1e6;
  gen.max_matrices = 2;
  const Trace trace = make_trace(gen);
  ServiceConfig cfg = replay_config();
  cfg.coalesce.max_batch = 8;
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, trace, cfg);
  EXPECT_EQ(report.requests, 30);
  for (const BatchRecord& b : report.batch_log) EXPECT_LE(b.matrices, 8 + 2);
}

TEST(ServiceReplay, DeterminismSweepAcrossPoolsStreamsAndTenants) {
  // The acceptance-criteria sweep: every (pool × streams × tenant-count)
  // config replays bit-identically — report fields AND factor payloads.
  const char* pools[] = {"k40c", "cpu,k40c", "k40c:2streams,p100"};
  for (const char* desc : pools) {
    for (int tenants : {1, 3}) {
      TraceGenConfig gen;
      gen.count = 24;
      gen.tenants = tenants;
      gen.rate = 300000.0;
      gen.nmax = 40;
      const Trace trace = make_trace(gen);
      ServiceConfig cfg = replay_config();
      cfg.mode = sim::ExecMode::Full;
      cfg.keep_payloads = true;
      hetero::DevicePool p1 = hetero::DevicePool::parse(desc);
      hetero::DevicePool p2 = hetero::DevicePool::parse(desc);
      const ServiceReport a = replay_trace(p1, trace, cfg);
      const ServiceReport b = replay_trace(p2, trace, cfg);
      SCOPED_TRACE(std::string(desc) + " x " + std::to_string(tenants) + " tenants");
      expect_reports_identical(a, b);
    }
  }
}

TEST(ServiceReplay, FactorsInvariantAcrossStreamCounts) {
  // Stream counts change the schedule and the modelled times, never the
  // merged-batch composition — so the factor bytes must match exactly.
  TraceGenConfig gen;
  gen.count = 16;
  gen.rate = 300000.0;
  gen.nmax = 40;
  const Trace trace = make_trace(gen);
  ServiceConfig cfg = replay_config();
  cfg.mode = sim::ExecMode::Full;
  cfg.keep_payloads = true;
  hetero::DevicePool p1 = hetero::DevicePool::parse("k40c:1streams");
  hetero::DevicePool p4 = hetero::DevicePool::parse("k40c:4streams");
  const ServiceReport a = replay_trace(p1, trace, cfg);
  const ServiceReport b = replay_trace(p4, trace, cfg);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].factors.size(), b.outcomes[i].factors.size());
    for (std::size_t j = 0; j < a.outcomes[i].factors.size(); ++j)
      EXPECT_EQ(a.outcomes[i].factors[j], b.outcomes[i].factors[j]);
  }
}

TEST(ServiceReplay, PayloadIndependentOfCoalescing) {
  // A request's factors are a pure function of the request: serving it
  // alone and serving it merged with strangers must produce the same bits.
  // Pinning the separated path with a fixed nb keeps the per-matrix math
  // independent of the merged batch's global maximum.
  Request lone = make_request(42, "a", {24, 32});
  Trace solo;
  solo.requests = {lone};
  solo.tenants = {{"a", 1.0}};
  Trace merged = solo;
  Request other = make_request(7, "b", {48});
  merged.requests.push_back(other);
  merged.tenants.emplace_back("b", 1.0);

  ServiceConfig cfg = replay_config();
  cfg.mode = sim::ExecMode::Full;
  cfg.keep_payloads = true;
  cfg.hetero.potrf.path = PotrfPath::Separated;
  cfg.hetero.potrf.separated_nb = 16;

  hetero::DevicePool p1 = hetero::DevicePool::parse("k40c");
  hetero::DevicePool p2 = hetero::DevicePool::parse("k40c");
  const ServiceReport a = replay_trace(p1, solo, cfg);
  const ServiceReport b = replay_trace(p2, merged, cfg);
  const auto find42 = [](const ServiceReport& r) {
    for (const RequestOutcome& o : r.outcomes)
      if (o.id == 42) return o;
    return RequestOutcome{};
  };
  const RequestOutcome oa = find42(a);
  const RequestOutcome ob = find42(b);
  ASSERT_EQ(oa.factors.size(), 2u);
  ASSERT_EQ(ob.factors.size(), 2u);
  EXPECT_EQ(ob.merged_with, 3);
  for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(oa.factors[j], ob.factors[j]);
}

TEST(ServiceReplay, MixedPrecisionSplitsIntoGroups) {
  Trace trace;
  trace.requests = {make_request(1, "a", {16}, Op::Potrf, Precision::Double),
                    make_request(2, "a", {16}, Op::Potrf, Precision::Single)};
  trace.tenants = {{"a", 1.0}};
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, trace, replay_config());
  EXPECT_EQ(report.batches, 2);
  EXPECT_DOUBLE_EQ(report.coalescing_ratio, 1.0);
}

TEST(ServiceReplay, FaultPoisonsOnlyAffectedRequests) {
  // One merged launch, one executor that dies after its first chunk: the
  // chunks no one can finish poison their requests, the rest stay Ok.
  Trace trace;
  for (std::uint64_t i = 1; i <= 8; ++i)
    trace.requests.push_back(make_request(i, "a", {32, 32}));
  trace.tenants = {{"a", 1.0}};
  ServiceConfig cfg = replay_config();
  cfg.mode = sim::ExecMode::Full;
  cfg.keep_payloads = true;
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  pool.set_faults(fault::parse_fault_spec("die:exec=0,after=1"));
  const ServiceReport report = replay_trace(pool, trace, cfg);
  EXPECT_EQ(report.requests, 8);
  EXPECT_GT(report.poisoned, 0);
  EXPECT_LT(report.poisoned, 8);
  for (const RequestOutcome& o : report.outcomes) {
    const bool has_poison =
        std::find(o.info.begin(), o.info.end(), kInfoChunkLost) != o.info.end();
    EXPECT_EQ(o.status == RequestStatus::Poisoned, has_poison);
    if (o.status == RequestStatus::Ok) {
      for (const auto& f : o.factors) EXPECT_FALSE(f.empty());
    }
  }
}

TEST(ServiceReplay, PosvSolvesAgainstRegeneratedSystem) {
  // End-to-end correctness of the demuxed solution: regenerate A and b from
  // the request's payload seeds and check ||A x - b|| is tiny.
  const int n = 16;
  Request r = make_request(5, "a", {n}, Op::Posv);
  r.nrhs = 2;
  Trace trace;
  trace.requests = {r};
  trace.tenants = {{"a", 1.0}};
  ServiceConfig cfg = replay_config();
  cfg.mode = sim::ExecMode::Full;
  cfg.keep_payloads = true;
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, trace, cfg);
  ASSERT_EQ(report.outcomes.size(), 1u);
  const RequestOutcome& o = report.outcomes[0];
  EXPECT_EQ(o.status, RequestStatus::Ok);
  ASSERT_EQ(o.solutions.size(), 1u);
  ASSERT_EQ(o.solutions[0].size(), sizeof(double) * n * r.nrhs);

  std::vector<double> a(static_cast<std::size_t>(n) * n);
  Rng ra(r.payload_seed());
  fill_spd(ra, a.data(), n, n);
  std::vector<double> b(static_cast<std::size_t>(n) * r.nrhs);
  Rng rb(r.payload_seed() ^ 0xD1B54A32D192ED03ull);
  fill_general(rb, b.data(), n, r.nrhs, n);
  std::vector<double> x(static_cast<std::size_t>(n) * r.nrhs);
  std::memcpy(x.data(), o.solutions[0].data(), o.solutions[0].size());

  double max_resid = 0.0;
  for (int col = 0; col < r.nrhs; ++col)
    for (int row = 0; row < n; ++row) {
      double acc = 0.0;
      for (int k = 0; k < n; ++k) acc += a[row + k * n] * x[k + col * n];
      max_resid = std::max(max_resid, std::abs(acc - b[row + col * n]));
    }
  EXPECT_LT(max_resid, 1e-10);
}

TEST(ServiceReplay, TenantWeightZeroRejected) {
  Trace trace;
  trace.requests = {make_request(1, "a", {16})};
  trace.tenants = {{"a", 1.0}};
  ServiceConfig cfg = replay_config();
  cfg.tenant_weights = {{"a", 0.0}};
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  EXPECT_THROW((void)replay_trace(pool, trace, cfg), Error);
}

TEST(ServiceReplay, EmptyTraceYieldsEmptyReport) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, Trace{}, replay_config());
  EXPECT_EQ(report.requests, 0);
  EXPECT_EQ(report.batches, 0);
  EXPECT_DOUBLE_EQ(report.makespan, 0.0);
}

TEST(ServiceReplay, ReportPrintsTables) {
  TraceGenConfig gen;
  gen.count = 12;
  const Trace trace = make_trace(gen);
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  const ServiceReport report = replay_trace(pool, trace, replay_config());
  std::ostringstream os;
  report.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("tenant"), std::string::npos);
  EXPECT_NE(text.find("coalescing"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_FALSE(report.describe().empty());
}

// ---------------------------------------------------------------------------
// Percentiles
// ---------------------------------------------------------------------------

TEST(ServiceReport, NearestRankPercentiles) {
  TenantStats t;
  for (int i = 1; i <= 100; ++i) t.latencies.push_back(i * 1e-3);
  EXPECT_DOUBLE_EQ(t.percentile(50.0), 50e-3);
  EXPECT_DOUBLE_EQ(t.percentile(99.0), 99e-3);
  EXPECT_DOUBLE_EQ(t.percentile(100.0), 100e-3);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(t.mean_latency(), 50.5e-3);
  EXPECT_DOUBLE_EQ(t.max_latency(), 100e-3);
  TenantStats empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

// ---------------------------------------------------------------------------
// Wall-clock Service
// ---------------------------------------------------------------------------

TEST(ServiceLive, ServesConcurrentSubmitters) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = 2e-3;  // wall seconds
  Service svc(pool, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 5;
  std::vector<std::thread> clients;
  std::vector<std::vector<JobTicket>> tickets(kThreads);
  for (int t = 0; t < kThreads; ++t)
    clients.emplace_back([&svc, &tickets, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Request r = make_request(0, "tenant" + std::to_string(t), {16, 24});
        tickets[static_cast<std::size_t>(t)].push_back(svc.submit(std::move(r)));
      }
    });
  for (auto& c : clients) c.join();

  for (auto& per_thread : tickets)
    for (const JobTicket& ticket : per_thread) {
      const RequestOutcome o = svc.wait(ticket);
      EXPECT_EQ(o.status, RequestStatus::Ok);
      EXPECT_EQ(o.id, ticket.id());
      EXPECT_GE(o.complete_time, o.submit_time);
    }
  const ServiceReport report = svc.drain();
  EXPECT_EQ(report.requests, kThreads * kPerThread);
  EXPECT_GE(report.coalescing_ratio, 1.0);
  EXPECT_EQ(static_cast<int>(report.tenants.size()), kThreads);
}

TEST(ServiceLive, DrainFlushesPendingAndRejectsLateSubmits) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = 60.0;  // never expires on its own
  Service svc(pool, cfg);
  const JobTicket ticket = svc.submit(make_request(0, "a", {16}));
  const ServiceReport report = svc.drain();  // must force the flush
  EXPECT_EQ(report.requests, 1);
  EXPECT_TRUE(ticket.done());
  EXPECT_EQ(svc.wait(ticket).status, RequestStatus::Ok);
  EXPECT_THROW((void)svc.submit(make_request(0, "a", {16})), Error);
  const ServiceReport again = svc.drain();  // idempotent
  EXPECT_EQ(again.requests, 1);
}

TEST(ServiceLive, DuplicateExplicitIdRejected) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  Service svc(pool, ServiceConfig{});
  (void)svc.submit(make_request(99, "a", {16}));
  EXPECT_THROW((void)svc.submit(make_request(99, "a", {16})), Error);
  (void)svc.drain();
}
