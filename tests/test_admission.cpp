// Overload-protection tests (docs/service.md, "Overload & admission"):
// VBATCH_ADMISSION spec parsing, token-bucket rate limiting, queue
// watermarks, deadline feasibility (arrival + dispatch fixed point),
// capacity feedback after executor loss, the bounded RequestQueue, ticket
// resolution for shed wall-clock requests, and the overload replay
// determinism sweep (burst + executor death, bit-identical shed sets and
// surviving factors).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "vbatch/service/admission.hpp"
#include "vbatch/service/request_queue.hpp"
#include "vbatch/service/service.hpp"
#include "vbatch/service/trace.hpp"
#include "vbatch/util/error.hpp"

using namespace vbatch;
using namespace vbatch::service;

namespace {

Request make_request(std::uint64_t id, const std::string& tenant, std::vector<int> sizes) {
  Request r;
  r.id = id;
  r.tenant = tenant;
  r.sizes = std::move(sizes);
  return r;
}

void expect_spec_error(const std::string& spec, const std::string& needle) {
  try {
    (void)parse_admission_spec(spec);
    FAIL() << "expected InvalidArgument for: " << spec;
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidArgument) << spec;
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

/// A controller whose capacity model is seeded with one nominal executor of
/// `peak` Gflop/s (efficiency 1.0 → capacity estimate == peak, so the
/// feasibility math in the tests is exact).
AdmissionController make_controller(AdmissionConfig cfg, double peak = 2.0) {
  cfg.enabled = true;
  cfg.initial_efficiency = 1.0;
  return AdmissionController(std::move(cfg), {peak});
}

}  // namespace

// ---------------------------------------------------------------------------
// VBATCH_ADMISSION spec grammar
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionSpec, ParsesFullSpec) {
  const AdmissionConfig cfg = parse_admission_spec(
      "max-queue=8; max-gb=0.5 ;tenant-rate=2.5;burst=0.1;shed-horizon=0.2;deadlines=off");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.max_queue, 8);
  EXPECT_DOUBLE_EQ(cfg.max_queue_bytes, 0.5 * 1024.0 * 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(cfg.tenant_rate_gflops, 2.5);
  EXPECT_DOUBLE_EQ(cfg.burst_seconds, 0.1);
  EXPECT_DOUBLE_EQ(cfg.shed_horizon_seconds, 0.2);
  EXPECT_FALSE(cfg.respect_deadlines);
}

TEST(ServiceAdmissionSpec, SingleKeyEnables) {
  const AdmissionConfig cfg = parse_admission_spec("max-queue=3");
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.max_queue, 3);
  EXPECT_DOUBLE_EQ(cfg.tenant_rate_gflops, 0.0);  // other policies stay off
  EXPECT_TRUE(cfg.respect_deadlines);
}

TEST(ServiceAdmissionSpec, MalformedSpecsNameTheToken) {
  expect_spec_error("", "empty spec");
  expect_spec_error("   ;  ", "empty spec");
  expect_spec_error("max-queue", "key=value");
  expect_spec_error("=5", "key=value");
  expect_spec_error("max-queue=0", "positive integer");
  expect_spec_error("max-queue=1.5", "positive integer");
  expect_spec_error("max-queue=abc", "finite number");
  expect_spec_error("max-gb=-1", "positive");
  expect_spec_error("tenant-rate=0", "positive");
  expect_spec_error("burst=-0.1", "positive");
  expect_spec_error("shed-horizon=-1", "non-negative");
  expect_spec_error("deadlines=maybe", "on|off");
  expect_spec_error("bogus=1", "unknown key 'bogus'");
  expect_spec_error("max-queue=1;max-queue=2", "duplicate key");
}

// ---------------------------------------------------------------------------
// Token buckets
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionBucket, OversizedRequestRunsIntoDebtThenSheds) {
  // Rate 1e-6 Gflop/s → 1e3 flops/s, bucket = 50 flops. A {16} potrf costs
  // ~1.5 kflop (≫ the bucket), so the oversized rule admits it once (full
  // bucket → debt) and sheds the immediate follow-up.
  AdmissionConfig cfg;
  cfg.tenant_rate_gflops = 1e-6;
  AdmissionController ac = make_controller(cfg);
  const Request r = make_request(1, "a", {16});
  EXPECT_EQ(ac.admit(r, 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(ac.admit(make_request(2, "a", {16}), 0.0, {}),
            AdmissionDecision::RejectedTenantRate);
  // Refill is a pure function of elapsed virtual time: after the debt
  // (~1.5 kflop) drains at 1 kflop/s, the tenant is admitted again.
  EXPECT_EQ(ac.admit(make_request(3, "a", {16}), 0.5, {}),
            AdmissionDecision::RejectedTenantRate);
  EXPECT_EQ(ac.admit(make_request(4, "a", {16}), 10.0, {}), AdmissionDecision::Admit);
}

TEST(ServiceAdmissionBucket, WeightScalesRefill) {
  AdmissionConfig cfg;
  cfg.tenant_rate_gflops = 1e-6;
  AdmissionController ac = make_controller(cfg);
  ac.set_weight("heavy", 10000.0);  // 1e7 flops/s → bucket 5e5 flops
  ac.set_weight("light", 1.0);
  // Both heavy requests fit in the scaled bucket; light's second one sheds.
  EXPECT_EQ(ac.admit(make_request(1, "heavy", {16}), 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(ac.admit(make_request(2, "heavy", {16}), 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(ac.admit(make_request(3, "light", {16}), 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(ac.admit(make_request(4, "light", {16}), 0.0, {}),
            AdmissionDecision::RejectedTenantRate);
}

TEST(ServiceAdmissionBucket, AbsoluteOverrideIgnoresWeight) {
  AdmissionConfig cfg;
  cfg.tenant_rate_gflops = 1e-6;
  cfg.tenant_rates = {{"vip", 100.0}};  // 1e11 flops/s regardless of weight
  AdmissionController ac = make_controller(cfg);
  ac.set_weight("vip", 1e-6);  // the weight would starve vip if it applied
  for (std::uint64_t i = 1; i <= 8; ++i)
    EXPECT_EQ(ac.admit(make_request(i, "vip", {32}), 0.0, {}), AdmissionDecision::Admit);
}

TEST(ServiceAdmissionBucket, ZeroRateIsUnlimited) {
  AdmissionController ac = make_controller(AdmissionConfig{});
  for (std::uint64_t i = 1; i <= 100; ++i)
    EXPECT_EQ(ac.admit(make_request(i, "a", {64}), 0.0, {}), AdmissionDecision::Admit);
}

// ---------------------------------------------------------------------------
// Queue watermarks
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionWatermark, DepthWatermarkSheds) {
  AdmissionConfig cfg;
  cfg.max_queue = 2;
  AdmissionController ac = make_controller(cfg);
  QueueSnapshot q;
  q.depth = 1;
  EXPECT_EQ(ac.admit(make_request(1, "a", {16}), 0.0, q), AdmissionDecision::Admit);
  q.depth = 2;
  EXPECT_EQ(ac.admit(make_request(2, "a", {16}), 0.0, q),
            AdmissionDecision::RejectedQueueFull);
}

TEST(ServiceAdmissionWatermark, BytesWatermarkSheds) {
  const Request r = make_request(1, "a", {16});
  AdmissionConfig cfg;
  cfg.max_queue_bytes = 3.0 * r.bytes();
  AdmissionController ac = make_controller(cfg);
  QueueSnapshot q;
  q.bytes = 2.0 * r.bytes();
  EXPECT_EQ(ac.admit(r, 0.0, q), AdmissionDecision::Admit);
  q.bytes = 2.5 * r.bytes();
  EXPECT_EQ(ac.admit(r, 0.0, q), AdmissionDecision::RejectedQueueFull);
}

TEST(ServiceAdmissionWatermark, WatermarkRejectionNeverDrainsTokens) {
  // A queue-full rejection must not charge the tenant's bucket: once the
  // queue clears, the same request is admitted on its untouched tokens.
  AdmissionConfig cfg;
  cfg.max_queue = 1;
  cfg.tenant_rate_gflops = 1e-6;  // bucket fits exactly one oversized admit
  AdmissionController ac = make_controller(cfg);
  QueueSnapshot full;
  full.depth = 1;
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(ac.admit(make_request(1, "a", {16}), 0.0, full),
              AdmissionDecision::RejectedQueueFull);
  EXPECT_EQ(ac.admit(make_request(1, "a", {16}), 0.0, {}), AdmissionDecision::Admit);
}

// ---------------------------------------------------------------------------
// Deadline feasibility
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionDeadline, InfeasibleDeadlineShedsOnArrival) {
  // Capacity 1 Gflop/s; a {200} potrf costs ~2.7 Mflop → ~2.7 ms service
  // time. A 1 ms deadline is unmeetable, a 10 ms one is fine.
  AdmissionController ac = make_controller(AdmissionConfig{}, 1.0);
  Request r = make_request(1, "a", {200});
  r.deadline = 1e-3;
  EXPECT_EQ(ac.admit(r, 0.0, {}), AdmissionDecision::RejectedDeadline);
  r.deadline = 1e-2;
  EXPECT_EQ(ac.admit(r, 0.0, {}), AdmissionDecision::Admit);
}

TEST(ServiceAdmissionDeadline, BacklogAndBusyPoolCountAgainstTheDeadline) {
  AdmissionController ac = make_controller(AdmissionConfig{}, 1.0);
  Request r = make_request(1, "a", {50});  // ~42 kflop → ~42 us alone
  r.deadline = 1e-3;
  EXPECT_EQ(ac.admit(r, 0.0, {}), AdmissionDecision::Admit);
  QueueSnapshot q;
  q.busy_until = 5e-3;  // pool busy past the deadline before it even starts
  EXPECT_EQ(ac.admit(r, 0.0, q), AdmissionDecision::RejectedDeadline);
  q.busy_until = 0.0;
  q.flops = 5e6;  // 5 ms of queued backlog ahead of it
  EXPECT_EQ(ac.admit(r, 0.0, q), AdmissionDecision::RejectedDeadline);
}

TEST(ServiceAdmissionDeadline, RespectDeadlinesOffLeavesSloAsReporting) {
  AdmissionConfig cfg;
  cfg.respect_deadlines = false;
  AdmissionController ac = make_controller(cfg, 1.0);
  Request r = make_request(1, "a", {200});
  r.deadline = 1e-6;  // hopeless, but shedding is disabled
  EXPECT_EQ(ac.admit(r, 0.0, {}), AdmissionDecision::Admit);
  auto filtered = ac.filter_deadlines({r}, 0.0);
  EXPECT_EQ(filtered.kept.size(), 1u);
  EXPECT_TRUE(filtered.dropped.empty());
}

TEST(ServiceAdmissionDeadline, DispatchFilterDropsExpiredKeepsRestInOrder) {
  // At 1 Gflop/s the merged {200}+{50} launch takes ~2.7 ms: the 0.1 ms
  // deadline can no longer be met at dispatch, the 5 ms one survives —
  // and after the drop the shrunken launch re-estimates under the fixed
  // point, confirming the survivor.
  AdmissionController ac = make_controller(AdmissionConfig{}, 1.0);
  Request tight = make_request(1, "a", {200});
  tight.deadline = 1e-4;
  Request loose = make_request(2, "b", {50});
  loose.deadline = 5e-3;
  Request nodl = make_request(3, "c", {50});
  auto filtered = ac.filter_deadlines({tight, loose, nodl}, 0.0);
  ASSERT_EQ(filtered.kept.size(), 2u);
  EXPECT_EQ(filtered.kept[0].id, 2u);  // survivor order preserved
  EXPECT_EQ(filtered.kept[1].id, 3u);
  ASSERT_EQ(filtered.dropped.size(), 1u);
  EXPECT_EQ(filtered.dropped[0].id, 1u);
}

// ---------------------------------------------------------------------------
// Capacity feedback + shed plan
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionCapacity, EwmaCalibratesTowardObservedThroughput) {
  AdmissionController ac = make_controller(AdmissionConfig{}, 10.0);
  EXPECT_DOUBLE_EQ(ac.capacity_gflops(), 10.0);
  for (int i = 0; i < 50; ++i) ac.observe_launch(2e9, 1.0, {});  // 2 Gflop/s observed
  EXPECT_NEAR(ac.capacity_gflops(), 2.0, 0.05);
  EXPECT_FALSE(ac.take_capacity_drop());  // calibration alone is not a drop
}

TEST(ServiceAdmissionCapacity, ExecutorLossCutsCapacityOnceAndTightensRates) {
  AdmissionConfig cfg;
  cfg.tenant_rate_gflops = 1e-6;
  cfg.initial_efficiency = 1.0;
  cfg.enabled = true;
  AdmissionController ac(cfg, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(ac.capacity_gflops(), 20.0);

  ac.observe_launch(0.0, 0.0, {0, 1});  // executor 1 reported dead
  EXPECT_EQ(ac.executors_lost(), 1);
  EXPECT_DOUBLE_EQ(ac.capacity_gflops(), 10.0);  // multiplicative 50% cut
  EXPECT_TRUE(ac.take_capacity_drop());
  EXPECT_FALSE(ac.take_capacity_drop());  // reading clears the flag

  // The same executor staying dead in later launches is not a new drop.
  ac.observe_launch(0.0, 0.0, {0, 1});
  EXPECT_EQ(ac.executors_lost(), 1);
  EXPECT_FALSE(ac.take_capacity_drop());

  // Post-drop, every tenant's refill is tightened by capacity/initial
  // (here 0.5x): the debt of one oversized {16} admit (~1.5 kflop) repays
  // in ~1.5 s at the full 1 kflop/s rate but needs ~3 s at the degraded
  // 0.5 kflop/s — so at t=2 s only the healthy pool re-admits the tenant.
  AdmissionController fresh(cfg, {10.0, 10.0});
  EXPECT_EQ(fresh.admit(make_request(1, "a", {16}), 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(fresh.admit(make_request(2, "a", {16}), 2.0, {}), AdmissionDecision::Admit);
  AdmissionController degraded(cfg, {10.0, 10.0});
  degraded.observe_launch(0.0, 0.0, {0, 1});
  (void)degraded.take_capacity_drop();
  EXPECT_EQ(degraded.admit(make_request(1, "a", {16}), 0.0, {}), AdmissionDecision::Admit);
  EXPECT_EQ(degraded.admit(make_request(2, "a", {16}), 2.0, {}),
            AdmissionDecision::RejectedTenantRate)
      << "refill at half rate must not recover within what full rate repaid";
}

TEST(ServiceAdmissionCapacity, ShedPlanTakesLowestWeightNewestFirst) {
  AdmissionConfig cfg;
  cfg.shed_horizon_seconds = 1.0;
  AdmissionController ac = make_controller(cfg, 1e-9);  // ~1 flop/s capacity floor
  ac.set_weight("gold", 4.0);
  ac.set_weight("bronze", 1.0);
  // Backlog of 4 × 1e6 flops against a ~1e6-flop budget: three victims, in
  // (lowest weight, newest first) order, then gold's newest.
  const std::vector<PendingItem> pending = {
      {1, "gold", 1e6}, {2, "bronze", 1e6}, {3, "gold", 1e6}, {4, "bronze", 1e6}};
  const std::vector<std::uint64_t> victims = ac.shed_plan(pending);
  ASSERT_EQ(victims.size(), 3u);
  EXPECT_EQ(victims[0], 4u);  // bronze, newest
  EXPECT_EQ(victims[1], 2u);  // bronze, older
  EXPECT_EQ(victims[2], 3u);  // gold, newest
}

TEST(ServiceAdmissionCapacity, ShedPlanEmptyWhenBacklogFits) {
  AdmissionConfig cfg;
  cfg.shed_horizon_seconds = 10.0;
  AdmissionController ac = make_controller(cfg, 10.0);  // 1e11-flop budget
  EXPECT_TRUE(ac.shed_plan({{1, "a", 1e6}, {2, "b", 1e6}}).empty());
  // Horizon 0 disables retroactive shedding entirely.
  AdmissionConfig off;
  off.shed_horizon_seconds = 0.0;
  AdmissionController none = make_controller(off, 1e-9);
  EXPECT_TRUE(none.shed_plan({{1, "a", 1e18}}).empty());
}

// ---------------------------------------------------------------------------
// Bounded RequestQueue (satellite: the memory-safety half)
// ---------------------------------------------------------------------------

TEST(ServiceQueueBound, TrySubmitReturnsQueueFullWithoutEnqueueing) {
  RequestQueue q(2);
  EXPECT_EQ(q.capacity(), 2);
  EXPECT_EQ(q.try_submit(make_request(1, "a", {16})), Status::Ok);
  EXPECT_EQ(q.try_submit(make_request(2, "a", {16})), Status::Ok);
  EXPECT_EQ(q.try_submit(make_request(3, "a", {16})), Status::QueueFull);
  EXPECT_EQ(q.depth(), 2);  // the shed request was not enqueued
  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 1u);
  EXPECT_EQ(drained[1].id, 2u);
  EXPECT_EQ(q.try_submit(make_request(3, "a", {16})), Status::Ok);  // space again
}

TEST(ServiceQueueBound, BlockingSubmitWaitsForSpace) {
  RequestQueue q(1);
  q.submit(make_request(1, "a", {16}));
  std::thread blocked([&q] { q.submit(make_request(2, "a", {16})); });
  // Let the submitter reach the wait, then free a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.depth(), 1);
  const auto first = q.drain();
  blocked.join();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].id, 1u);
  const auto second = q.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, 2u);
}

TEST(ServiceQueueBound, CloseWakesBlockedSubmitterWithError) {
  RequestQueue q(1);
  q.submit(make_request(1, "a", {16}));
  std::atomic<bool> threw{false};
  std::thread blocked([&q, &threw] {
    try {
      q.submit(make_request(2, "a", {16}));
    } catch (const Error& e) {
      threw = e.status() == Status::InvalidArgument;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();
  EXPECT_TRUE(threw.load());
  EXPECT_THROW((void)q.try_submit(make_request(3, "a", {16})), Error);
  EXPECT_EQ(q.drain().size(), 1u);  // queued work stays drainable
}

TEST(ServiceQueueBound, UnboundedByDefault) {
  RequestQueue q;
  for (std::uint64_t i = 1; i <= 64; ++i)
    EXPECT_EQ(q.try_submit(make_request(i, "a", {8})), Status::Ok);
  EXPECT_EQ(q.depth(), 64);
  EXPECT_THROW(RequestQueue(-1), Error);
}

// ---------------------------------------------------------------------------
// Wall-clock Service: shed tickets resolve instead of hanging (satellite)
// ---------------------------------------------------------------------------

TEST(ServiceLiveAdmission, ShedTicketResolvesWithRejectionStatus) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = 2e-3;
  cfg.admission.enabled = true;
  // ~1e-3 flops/s refill: the first (oversized) request is admitted into
  // debt, the immediate second one is deterministically shed — wall-clock
  // refill cannot repay a ~kflop debt within the test's lifetime.
  cfg.admission.tenant_rate_gflops = 1e-12;
  Service svc(pool, cfg);
  const JobTicket served = svc.submit(make_request(0, "a", {16}));
  const JobTicket shed = svc.submit(make_request(0, "a", {16}));
  const RequestOutcome ok = svc.wait(served);
  EXPECT_EQ(ok.status, RequestStatus::Ok);
  const RequestOutcome rejected = svc.wait(shed);  // must not hang
  EXPECT_EQ(rejected.status, RequestStatus::RejectedTenantRate);
  EXPECT_TRUE(shed.done());
  EXPECT_EQ(rejected.complete_time, rejected.submit_time);  // never dispatched
  const ServiceReport report = svc.drain();
  EXPECT_EQ(report.requests, 2);
  EXPECT_EQ(report.accepted, 1);
  EXPECT_EQ(report.shed, 1);
  EXPECT_TRUE(report.admission_enabled);
}

TEST(ServiceLiveAdmission, BoundedIngressShedsWhenDispatcherStalls) {
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = 60.0;  // dispatcher never flushes on its own
  cfg.admission.enabled = true;
  cfg.admission.max_queue = 2;
  Service svc(pool, cfg);
  std::vector<JobTicket> tickets;
  for (int i = 0; i < 8; ++i) tickets.push_back(svc.submit(make_request(0, "a", {16})));
  // Depth counts ingress + coalescer, so the split between the two (a race
  // with the dispatcher) cannot change the verdict: exactly the first two
  // submits fit under the depth-2 watermark. drain() resolves the accepted
  // tickets; the shed ones resolved at submit time.
  const ServiceReport report = svc.drain();
  int ok = 0;
  int shed = 0;
  for (const JobTicket& t : tickets) {
    const RequestOutcome o = svc.wait(t);
    if (o.status == RequestStatus::Ok) ++ok;
    if (o.status == RequestStatus::RejectedQueueFull) ++shed;
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 6);
  EXPECT_EQ(report.shed, shed);
  EXPECT_EQ(report.accepted, ok);
}

// ---------------------------------------------------------------------------
// VBATCH_ADMISSION environment knob
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionEnv, EnvSpecEnablesReplayAdmission) {
  TraceGenConfig gen;
  gen.count = 24;
  gen.rate = 300000.0;
  const Trace trace = make_trace(gen);
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ASSERT_EQ(setenv("VBATCH_ADMISSION", "max-queue=4", 1), 0);
  const ServiceReport report = replay_trace(pool, trace, ServiceConfig{});
  unsetenv("VBATCH_ADMISSION");
  EXPECT_TRUE(report.admission_enabled);
  EXPECT_GT(report.shed, 0);
  EXPECT_EQ(report.accepted + report.shed + report.expired, 24);

  // An explicit config wins over the env var.
  ASSERT_EQ(setenv("VBATCH_ADMISSION", "max-queue=1", 1), 0);
  ServiceConfig explicit_cfg;
  explicit_cfg.admission.enabled = true;
  explicit_cfg.admission.max_queue = 1000;
  hetero::DevicePool pool2 = hetero::DevicePool::parse("k40c");
  const ServiceReport wide = replay_trace(pool2, trace, explicit_cfg);
  unsetenv("VBATCH_ADMISSION");
  EXPECT_EQ(wide.shed, 0) << "explicit max-queue=1000 must override env max-queue=1";
}

TEST(ServiceAdmissionEnv, MalformedEnvSpecThrows) {
  Trace trace;
  trace.requests = {make_request(1, "a", {16})};
  trace.tenants = {{"a", 1.0}};
  hetero::DevicePool pool = hetero::DevicePool::parse("k40c");
  ASSERT_EQ(setenv("VBATCH_ADMISSION", "bogus=1", 1), 0);
  EXPECT_THROW((void)replay_trace(pool, trace, ServiceConfig{}), Error);
  unsetenv("VBATCH_ADMISSION");
}

// ---------------------------------------------------------------------------
// Overload replay determinism (the acceptance-criteria sweep)
// ---------------------------------------------------------------------------

namespace {

ServiceConfig overload_config() {
  ServiceConfig cfg;
  cfg.coalesce.latency_budget = 1e-3;
  cfg.mode = sim::ExecMode::Full;
  cfg.keep_payloads = true;
  // Pin the separated path: per-matrix math independent of launch-mates, so
  // factors can be compared bit-for-bit against a solo reference.
  cfg.hetero.potrf.path = PotrfPath::Separated;
  cfg.hetero.potrf.separated_nb = 16;
  cfg.admission.enabled = true;
  cfg.admission.max_queue = 12;
  cfg.admission.tenant_rate_gflops = 0.5;
  return cfg;
}

Trace burst_trace(int tenants) {
  TraceGenConfig gen;
  gen.count = 48;
  gen.tenants = tenants;
  gen.rate = 150000.0;
  gen.nmax = 40;
  gen.burst = 4.0;         // middle third arrives 4x faster
  gen.deadline_frac = 0.4;
  gen.deadline_seconds = 2e-3;
  return make_trace(gen);
}

std::set<std::uint64_t> shed_ids(const ServiceReport& r) {
  std::set<std::uint64_t> ids;
  for (const RequestOutcome& o : r.outcomes)
    if (is_rejected(o.status)) ids.insert(o.id);
  return ids;
}

}  // namespace

TEST(ServiceOverloadReplay, BurstAndExecutorDeathReplayBitIdentically) {
  // 2x-overload burst + one executor dying mid-trace, swept across pools,
  // stream counts and tenant counts: the shed set and every surviving
  // factor byte must reproduce exactly.
  const char* pools[] = {"cpu,k40c", "k40c:2streams,p100"};
  for (const char* desc : pools) {
    for (int tenants : {1, 3}) {
      SCOPED_TRACE(std::string(desc) + " x " + std::to_string(tenants) + " tenants");
      const Trace trace = burst_trace(tenants);
      const ServiceConfig cfg = overload_config();
      hetero::DevicePool p1 = hetero::DevicePool::parse(desc);
      hetero::DevicePool p2 = hetero::DevicePool::parse(desc);
      p1.set_faults(fault::parse_fault_spec("die:exec=1,after=2"));
      p2.set_faults(fault::parse_fault_spec("die:exec=1,after=2"));
      const ServiceReport a = replay_trace(p1, trace, cfg);
      const ServiceReport b = replay_trace(p2, trace, cfg);

      EXPECT_GT(a.shed + a.expired, 0) << "the burst must trigger shedding";
      EXPECT_EQ(shed_ids(a), shed_ids(b));
      ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
      for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const RequestOutcome& x = a.outcomes[i];
        const RequestOutcome& y = b.outcomes[i];
        EXPECT_EQ(x.id, y.id);
        EXPECT_EQ(x.status, y.status);
        EXPECT_EQ(std::memcmp(&x.complete_time, &y.complete_time, sizeof(double)), 0);
        ASSERT_EQ(x.factors.size(), y.factors.size());
        for (std::size_t j = 0; j < x.factors.size(); ++j)
          EXPECT_EQ(x.factors[j], y.factors[j]);
      }
      EXPECT_EQ(a.shed, b.shed);
      EXPECT_EQ(a.expired, b.expired);
      EXPECT_EQ(std::memcmp(&a.goodput_flops, &b.goodput_flops, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&a.capacity_gflops, &b.capacity_gflops, sizeof(double)), 0);
    }
  }
}

TEST(ServiceOverloadReplay, AcceptedFactorsMatchUncontendedRun) {
  // Admission changes WHICH requests run, never WHAT an accepted request
  // computes: each accepted factor must be bit-identical to serving that
  // request alone on a quiet pool.
  const Trace trace = burst_trace(2);
  const ServiceConfig cfg = overload_config();
  hetero::DevicePool pool = hetero::DevicePool::parse("cpu,k40c");
  const ServiceReport report = replay_trace(pool, trace, cfg);
  ASSERT_GT(report.accepted, 0);

  ServiceConfig solo_cfg = overload_config();
  solo_cfg.admission = AdmissionConfig{};  // uncontended: no admission at all
  int checked = 0;
  for (const RequestOutcome& o : report.outcomes) {
    if (o.status != RequestStatus::Ok || o.factors.empty()) continue;
    const Request* req = nullptr;
    for (const Request& r : trace.requests)
      if (r.id == o.id) req = &r;
    ASSERT_NE(req, nullptr);
    Trace solo;
    Request alone = *req;
    alone.submit_time = 0.0;
    alone.deadline = 0.0;
    solo.requests = {alone};
    solo.tenants = {{req->tenant, 1.0}};
    hetero::DevicePool quiet = hetero::DevicePool::parse("k40c");
    const ServiceReport ref = replay_trace(quiet, solo, solo_cfg);
    ASSERT_EQ(ref.outcomes.size(), 1u);
    ASSERT_EQ(ref.outcomes[0].factors.size(), o.factors.size());
    for (std::size_t j = 0; j < o.factors.size(); ++j)
      EXPECT_EQ(ref.outcomes[0].factors[j], o.factors[j]) << "request " << o.id;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(ServiceOverloadReplay, ExecutorDeathTightensAdmissionInsteadOfQueueing) {
  // The graceful-degradation contract: with an executor dying mid-burst the
  // capacity estimate drops below the healthy-pool seed and the service
  // sheds load; the accepted requests still complete.
  const Trace trace = burst_trace(2);
  const ServiceConfig cfg = overload_config();
  hetero::DevicePool pool = hetero::DevicePool::parse("cpu,k40c");
  const double seed_capacity =
      pool.peak_gflops(Precision::Double) * cfg.admission.initial_efficiency;
  pool.set_faults(fault::parse_fault_spec("die:exec=1,after=2"));
  const ServiceReport report = replay_trace(pool, trace, cfg);
  EXPECT_TRUE(report.admission_enabled);
  EXPECT_LT(report.capacity_gflops, seed_capacity);
  EXPECT_GT(report.shed + report.expired, 0);
  EXPECT_EQ(report.accepted + report.shed + report.expired, trace.count());
  for (const RequestOutcome& o : report.outcomes) {
    if (!is_rejected(o.status)) {
      EXPECT_NE(o.status, RequestStatus::Pending);
    }
  }
}

TEST(ServiceOverloadReplay, DisabledAdmissionReproducesAdmitEverything) {
  // enabled=false must be byte-for-byte the PR 8 service: nothing shed,
  // reports identical to a config that never mentions admission.
  const Trace trace = burst_trace(2);
  ServiceConfig off;
  off.coalesce.latency_budget = 1e-3;
  hetero::DevicePool p1 = hetero::DevicePool::parse("k40c");
  hetero::DevicePool p2 = hetero::DevicePool::parse("k40c");
  const ServiceReport plain = replay_trace(p1, trace, off);
  ServiceConfig with_knobs = off;
  with_knobs.admission.max_queue = 1;  // set but NOT enabled
  with_knobs.admission.tenant_rate_gflops = 1e-9;
  const ServiceReport knobs = replay_trace(p2, trace, with_knobs);
  EXPECT_FALSE(plain.admission_enabled);
  EXPECT_FALSE(knobs.admission_enabled);
  EXPECT_EQ(plain.shed, 0);
  EXPECT_EQ(knobs.shed, 0);
  EXPECT_EQ(plain.batches, knobs.batches);
  EXPECT_EQ(std::memcmp(&plain.makespan, &knobs.makespan, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&plain.flops, &knobs.flops, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// Trace grammar: the deadline field
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionTrace, DeadlineFieldRoundTripsAndValidates) {
  const Trace t = parse_trace(
      "tenant a weight=1\n"
      "req id=1 t=0 tenant=a op=potrf prec=d n=16 deadline=0.004\n"
      "req id=2 t=0.001 tenant=a op=potrf prec=d n=16\n");
  ASSERT_EQ(t.count(), 2);
  EXPECT_DOUBLE_EQ(t.requests[0].deadline, 0.004);
  EXPECT_DOUBLE_EQ(t.requests[1].deadline, 0.0);
  const std::string text = format_trace(t);
  EXPECT_NE(text.find("deadline=0.004"), std::string::npos);
  const Trace back = parse_trace(text);
  EXPECT_DOUBLE_EQ(back.requests[0].deadline, 0.004);

  EXPECT_THROW((void)parse_trace("req id=1 t=0 tenant=a op=potrf prec=d n=16 deadline=0\n"),
               Error);
  EXPECT_THROW(
      (void)parse_trace("req id=1 t=0 tenant=a op=potrf prec=d n=16 deadline=-1\n"), Error);
}

TEST(ServiceAdmissionTrace, GeneratorBurstAndDeadlineKnobs) {
  TraceGenConfig gen;
  gen.count = 90;
  gen.tenants = 2;
  gen.rate = 1000.0;
  gen.deadline_frac = 0.5;
  gen.deadline_seconds = 3e-3;
  gen.burst = 10.0;
  const Trace t = make_trace(gen);
  ASSERT_EQ(t.count(), 90);
  int with_deadline = 0;
  for (const Request& r : t.requests) {
    if (r.deadline > 0.0) {
      ++with_deadline;
      EXPECT_DOUBLE_EQ(r.deadline, 3e-3);
    }
  }
  EXPECT_GT(with_deadline, 20);
  EXPECT_LT(with_deadline, 70);

  // The burst compresses the middle third's inter-arrival gaps.
  auto span = [&](int from, int to) {
    return t.requests[static_cast<std::size_t>(to)].submit_time -
           t.requests[static_cast<std::size_t>(from)].submit_time;
  };
  EXPECT_LT(span(30, 59), 0.5 * span(0, 29));

  // With the knobs off the RNG stream is untouched: same arrivals/sizes as
  // the pre-overload generator.
  TraceGenConfig plain;
  plain.count = 90;
  plain.tenants = 2;
  plain.rate = 1000.0;
  TraceGenConfig zeroed = plain;
  zeroed.burst = 1.0;  // explicit 1x burst = no burst
  const Trace a = make_trace(plain);
  const Trace b = make_trace(zeroed);
  ASSERT_EQ(a.count(), b.count());
  for (int i = 0; i < a.count(); ++i) {
    EXPECT_EQ(std::memcmp(&a.requests[static_cast<std::size_t>(i)].submit_time,
                          &b.requests[static_cast<std::size_t>(i)].submit_time,
                          sizeof(double)),
              0);
    EXPECT_EQ(a.requests[static_cast<std::size_t>(i)].sizes,
              b.requests[static_cast<std::size_t>(i)].sizes);
  }

  EXPECT_THROW((void)make_trace([] {
                 TraceGenConfig bad;
                 bad.burst = -1.0;
                 return bad;
               }()),
               Error);
  EXPECT_THROW((void)make_trace([] {
                 TraceGenConfig bad;
                 bad.deadline_frac = 1.5;
                 return bad;
               }()),
               Error);
}
