// Tests for the autotuner (§III-D's tuning), the kernel profiler, and the
// structured matrix generators.
#include <gtest/gtest.h>

#include <sstream>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/autotune.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/core/matrix_gen.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/sim/profile.hpp"

namespace {

using namespace vbatch;

// ---------------------------------------------------------------------------
// Autotune
// ---------------------------------------------------------------------------

TEST(Autotune, BestBeatsOrMatchesDefaultConfiguration) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(5);
  const auto sizes = uniform_sizes(rng, 400, 200);

  const auto tuned = autotune_potrf<double>(q, sizes);
  EXPECT_GT(tuned.best_gflops, 0.0);

  // Default options on the same batch must not beat the tuner's pick.
  Queue probe(q.spec(), sim::ExecMode::TimingOnly);
  Batch<double> batch(probe, sizes);
  const auto def = potrf_vbatched<double>(probe, Uplo::Lower, batch);
  EXPECT_GE(tuned.best_gflops, def.gflops() * 0.999);
}

TEST(Autotune, PicksSeparatedForLargeSizes) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(6);
  const auto sizes = uniform_sizes(rng, 200, 1500);  // beyond fused feasibility
  const auto tuned = autotune_potrf<double>(q, sizes);
  EXPECT_EQ(tuned.best.path, PotrfPath::Separated);
}

TEST(Autotune, SweepsMultipleCandidatesWithDescriptions) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(7);
  const auto sizes = uniform_sizes(rng, 100, 96);
  const auto tuned = autotune_potrf<double>(q, sizes);
  EXPECT_GE(tuned.candidates.size(), 6u);  // 4 nb × sort + separated variants
  for (const auto& c : tuned.candidates) EXPECT_FALSE(c.describe().empty());
}

TEST(Autotune, SubsamplingKeepsSweepBounded) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(8);
  const auto sizes = uniform_sizes(rng, 50000, 64);
  TuneSettings settings;
  settings.max_sample = 128;
  const auto tuned = autotune_potrf<double>(q, sizes, settings);
  EXPECT_GT(tuned.best_gflops, 0.0);
}

TEST(Autotune, EmptySizeListThrows) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  EXPECT_THROW(autotune_potrf<double>(q, {}), Error);
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(Profile, AggregatesByKernelName) {
  sim::Timeline tl;
  for (int i = 0; i < 3; ++i) {
    sim::KernelRecord r;
    r.name = "kernel_a";
    r.start = i;
    r.end = i + 0.5;
    r.grid_blocks = 10;
    r.early_exits = 2;
    r.flops = 100;
    r.bytes = 50;
    r.resident_per_sm = 4;
    tl.add(r);
  }
  sim::KernelRecord b;
  b.name = "kernel_b";
  b.start = 0;
  b.end = 10.0;
  b.grid_blocks = 1;
  b.flops = 7;
  tl.add(b);

  const auto profiles = sim::profile_timeline(tl);
  ASSERT_EQ(profiles.size(), 2u);
  // Sorted by descending time: kernel_b (10 s) first.
  EXPECT_EQ(profiles[0].name, "kernel_b");
  EXPECT_EQ(profiles[1].name, "kernel_a");
  EXPECT_EQ(profiles[1].launches, 3);
  EXPECT_DOUBLE_EQ(profiles[1].seconds, 1.5);
  EXPECT_DOUBLE_EQ(profiles[1].flops, 300.0);
  EXPECT_EQ(profiles[1].blocks, 30);
  EXPECT_EQ(profiles[1].early_exits, 6);
  EXPECT_DOUBLE_EQ(profiles[1].exit_fraction(), 0.2);
  EXPECT_DOUBLE_EQ(profiles[1].avg_resident(), 4.0);
}

TEST(Profile, PrintsEveryKernel) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(9);
  const auto sizes = uniform_sizes(rng, 100, 400);
  Batch<double> batch(q, sizes);
  PotrfOptions o;
  o.path = PotrfPath::Separated;
  potrf_vbatched<double>(q, Uplo::Lower, batch, o);

  const auto profiles = sim::profile_timeline(q.device().timeline());
  std::ostringstream os;
  sim::print_profile(os, profiles);
  const std::string s = os.str();
  EXPECT_NE(s.find("vbatched_potf2_panel"), std::string::npos);
  EXPECT_NE(s.find("vbatched_syrk"), std::string::npos);
  EXPECT_NE(s.find("vbatched_trsm_sweep"), std::string::npos);
  EXPECT_NE(s.find("vbatched_trtri_diag"), std::string::npos);
}

TEST(Profile, TimeSharesSumToOneHundred) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(10);
  const auto sizes = uniform_sizes(rng, 200, 128);
  Batch<double> batch(q, sizes);
  potrf_vbatched<double>(q, Uplo::Lower, batch);
  const auto profiles = sim::profile_timeline(q.device().timeline());
  double total = 0.0;
  for (const auto& p : profiles) total += p.seconds;
  EXPECT_NEAR(total, q.time(), 1e-12);
}

// ---------------------------------------------------------------------------
// Matrix generators
// ---------------------------------------------------------------------------

class SpdCondTest : public ::testing::TestWithParam<double> {};

TEST_P(SpdCondTest, AchievesRequestedCondition) {
  const double cond = GetParam();
  Rng rng(11);
  const int n = 40;
  std::vector<double> buf(static_cast<std::size_t>(n * n));
  MatrixView<double> a(buf.data(), n, n, n);
  make_spd_cond(rng, a, cond);

  // SPD: Cholesky must succeed.
  auto fac = buf;
  MatrixView<double> f(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<double>(Uplo::Lower, f), 0);

  const double est = estimate_condition<double>(a);
  EXPECT_GT(est, cond * 0.5);
  EXPECT_LT(est, cond * 2.0);
}

INSTANTIATE_TEST_SUITE_P(Conditions, SpdCondTest, ::testing::Values(1.0, 10.0, 1e3, 1e6));

TEST(MatrixGen, DiagDominantIsSpd) {
  Rng rng(13);
  const int n = 30;
  std::vector<double> buf(static_cast<std::size_t>(n * n));
  MatrixView<double> a(buf.data(), n, n, n);
  make_diag_dominant(rng, a, 1.5);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
  EXPECT_EQ(blas::potrf<double>(Uplo::Lower, a), 0);
}

TEST(MatrixGen, TridiagIsSpdAndBanded) {
  Rng rng(17);
  const int n = 25;
  std::vector<double> buf(static_cast<std::size_t>(n * n));
  MatrixView<double> a(buf.data(), n, n, n);
  make_tridiag_spd(rng, a);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      if (std::abs(i - j) > 1) EXPECT_DOUBLE_EQ(a(i, j), 0.0);
    }
  EXPECT_EQ(blas::potrf<double>(Uplo::Lower, a), 0);
}

TEST(MatrixGen, BatchFillFeedsVbatchedFactorization) {
  Queue q;
  Rng rng(19);
  auto sizes = uniform_sizes(rng, 25, 48);
  Batch<double> batch(q, sizes);
  fill_batch_spd_cond(rng, batch, 100.0);
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
  potrf_vbatched<double>(q, Uplo::Lower, batch);
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0);
    const int n = sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower, orig, batch.matrix(i)), 1e-12);
  }
}

TEST(MatrixGen, IdentityConditionIsOne) {
  Rng rng(21);
  const int n = 16;
  std::vector<double> buf(static_cast<std::size_t>(n * n));
  MatrixView<double> a(buf.data(), n, n, n);
  make_spd_cond(rng, a, 1.0);  // all eigenvalues 1 -> A == I up to rounding
  EXPECT_NEAR(estimate_condition<double>(a), 1.0, 1e-6);
}

}  // namespace
