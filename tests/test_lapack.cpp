// Tests for the reference LAPACK-style factorizations: Cholesky, LU with
// partial pivoting, Householder QR — residual checks over parameterized
// sizes, blocked-vs-unblocked agreement, and failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

template <typename T>
std::vector<T> spd_matrix(Rng& rng, index_t n, index_t ld) {
  std::vector<T> a(static_cast<std::size_t>(ld * n));
  fill_spd(rng, a.data(), n, ld);
  return a;
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

class PotrfTest : public ::testing::TestWithParam<std::tuple<int, Uplo>> {};

TEST_P(PotrfTest, ResidualSmallDouble) {
  const auto [n, uplo] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n + 1000 * static_cast<int>(uplo)));
  auto orig = spd_matrix<double>(rng, n, n);
  auto fac = orig;
  MatrixView<double> a(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<double>(uplo, a, 8), 0);
  ConstMatrixView<double> ov(orig.data(), n, n, n);
  EXPECT_LT(blas::potrf_residual<double>(uplo, ov, a), 1e-14);
}

TEST_P(PotrfTest, BlockedMatchesUnblocked) {
  const auto [n, uplo] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 17));
  auto orig = spd_matrix<double>(rng, n, n);
  auto f1 = orig, f2 = orig;
  MatrixView<double> a1(f1.data(), n, n, n);
  MatrixView<double> a2(f2.data(), n, n, n);
  ASSERT_EQ(blas::potf2<double>(uplo, a1), 0);
  ASSERT_EQ(blas::potrf<double>(uplo, a2, 4), 0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) EXPECT_NEAR(a1(i, j), a2(i, j), 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PotrfTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 7, 16, 33, 64, 100),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper)));

TEST(Potrf, SinglePrecisionResidual) {
  Rng rng(4);
  const index_t n = 48;
  auto orig = spd_matrix<float>(rng, n, n);
  auto fac = orig;
  MatrixView<float> a(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<float>(Uplo::Lower, a, 16), 0);
  ConstMatrixView<float> ov(orig.data(), n, n, n);
  EXPECT_LT(blas::potrf_residual<float>(Uplo::Lower, ov, a), 1e-5);
}

TEST(Potrf, NonSpdReportsFirstBadPivot) {
  // Make the trailing 2x2 block indefinite: info should point past the
  // leading SPD part.
  Rng rng(8);
  const index_t n = 6;
  auto buf = spd_matrix<double>(rng, n, n);
  MatrixView<double> a(buf.data(), n, n, n);
  a(4, 4) = -100.0;  // breaks positivity at step 5
  const int info = blas::potrf<double>(Uplo::Lower, a, 2);
  EXPECT_EQ(info, 5);
}

TEST(Potrf, ZeroMatrixFailsAtFirstStep) {
  std::vector<double> buf(16, 0.0);
  MatrixView<double> a(buf.data(), 4, 4, 4);
  EXPECT_EQ(blas::potf2<double>(Uplo::Lower, a), 1);
}

TEST(Potrf, RespectsLeadingDimensionPadding) {
  Rng rng(21);
  const index_t n = 20, ld = 29;
  auto orig = spd_matrix<double>(rng, n, ld);
  auto fac = orig;
  // Poison the padding; it must survive untouched.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = n; i < ld; ++i) fac[static_cast<std::size_t>(i + j * ld)] = -7.5;
  MatrixView<double> a(fac.data(), n, n, ld);
  ASSERT_EQ(blas::potrf<double>(Uplo::Lower, a, 8), 0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = n; i < ld; ++i)
      EXPECT_DOUBLE_EQ(fac[static_cast<std::size_t>(i + j * ld)], -7.5);
  ConstMatrixView<double> ov(orig.data(), n, n, ld);
  EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower, ov, a), 1e-14);
}

TEST(Potrs, SolvesSpdSystem) {
  Rng rng(31);
  const index_t n = 24, nrhs = 3;
  auto orig = spd_matrix<double>(rng, n, n);
  auto fac = orig;
  MatrixView<double> a(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<double>(Uplo::Lower, a, 8), 0);

  std::vector<double> x_true(static_cast<std::size_t>(n * nrhs));
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(n * nrhs), 0.0);
  ConstMatrixView<double> ov(orig.data(), n, n, n);
  ConstMatrixView<double> xv(x_true.data(), n, nrhs, n);
  MatrixView<double> bv(b.data(), n, nrhs, n);
  blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, ov, xv, 0.0, bv);

  blas::potrs<double>(Uplo::Lower, a, bv);
  for (index_t j = 0; j < nrhs; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(bv(i, j), xv(i, j), 1e-9);
}

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

class GetrfTest : public ::testing::TestWithParam<int> {};

TEST_P(GetrfTest, ResidualSmall) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 3 + 1));
  std::vector<double> orig(static_cast<std::size_t>(n * n));
  fill_general(rng, orig.data(), n, n, n);
  auto lu = orig;
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  MatrixView<double> a(lu.data(), n, n, n);
  ASSERT_EQ(blas::getrf<double>(a, ipiv, 8), 0);
  ConstMatrixView<double> ov(orig.data(), n, n, n);
  EXPECT_LT(blas::getrf_residual<double>(ov, a, ipiv), 1e-13);
}

TEST_P(GetrfTest, BlockedMatchesUnblocked) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 5 + 2));
  std::vector<double> orig(static_cast<std::size_t>(n * n));
  fill_general(rng, orig.data(), n, n, n);
  auto l1 = orig, l2 = orig;
  std::vector<int> p1(static_cast<std::size_t>(n)), p2(static_cast<std::size_t>(n));
  MatrixView<double> a1(l1.data(), n, n, n), a2(l2.data(), n, n, n);
  ASSERT_EQ(blas::getf2<double>(a1, p1), 0);
  ASSERT_EQ(blas::getrf<double>(a2, p2, 4), 0);
  EXPECT_EQ(p1, p2);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) EXPECT_NEAR(a1(i, j), a2(i, j), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GetrfTest, ::testing::Values(1, 2, 5, 8, 13, 32, 50));

TEST(Getrf, PivotsAreOneBasedAndInRange) {
  Rng rng(77);
  const int n = 12;
  std::vector<double> buf(static_cast<std::size_t>(n * n));
  fill_general(rng, buf.data(), n, n, n);
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  MatrixView<double> a(buf.data(), n, n, n);
  ASSERT_EQ(blas::getrf<double>(a, ipiv, 4), 0);
  for (int k = 0; k < n; ++k) {
    EXPECT_GE(ipiv[static_cast<std::size_t>(k)], k + 1);
    EXPECT_LE(ipiv[static_cast<std::size_t>(k)], n);
  }
}

TEST(Getrf, SingularMatrixReportsInfo) {
  const int n = 4;
  std::vector<double> buf(static_cast<std::size_t>(n * n), 1.0);  // rank 1
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  MatrixView<double> a(buf.data(), n, n, n);
  EXPECT_GT(blas::getf2<double>(a, ipiv), 0);
}

TEST(Getrf, RectangularTallResidual) {
  Rng rng(123);
  const int m = 30, n = 18;
  std::vector<double> orig(static_cast<std::size_t>(m * n));
  fill_general(rng, orig.data(), m, n, m);
  auto lu = orig;
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  MatrixView<double> a(lu.data(), m, n, m);
  ASSERT_EQ(blas::getrf<double>(a, ipiv, 8), 0);
  ConstMatrixView<double> ov(orig.data(), m, n, m);
  EXPECT_LT(blas::getrf_residual<double>(ov, a, ipiv), 1e-13);
}

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

class GeqrfTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeqrfTest, ResidualSmall) {
  const auto [m, n] = GetParam();
  if (m < n) GTEST_SKIP() << "tall-or-square only";
  Rng rng(static_cast<std::uint64_t>(m * 101 + n));
  std::vector<double> orig(static_cast<std::size_t>(m * n));
  fill_general(rng, orig.data(), m, n, m);
  auto qr = orig;
  std::vector<double> tau(static_cast<std::size_t>(std::min(m, n)));
  MatrixView<double> a(qr.data(), m, n, m);
  blas::geqrf<double>(a, tau, 8);
  ConstMatrixView<double> ov(orig.data(), m, n, m);
  EXPECT_LT(blas::geqrf_residual<double>(ov, a, tau), 1e-13);
}

TEST_P(GeqrfTest, BlockedMatchesUnblocked) {
  const auto [m, n] = GetParam();
  if (m < n) GTEST_SKIP();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 3));
  std::vector<double> orig(static_cast<std::size_t>(m * n));
  fill_general(rng, orig.data(), m, n, m);
  auto q1 = orig, q2 = orig;
  std::vector<double> t1(static_cast<std::size_t>(std::min(m, n)));
  std::vector<double> t2 = t1;
  MatrixView<double> a1(q1.data(), m, n, m), a2(q2.data(), m, n, m);
  blas::geqr2<double>(a1, t1);
  blas::geqrf<double>(a2, t2, 4);
  for (std::size_t k = 0; k < t1.size(); ++k) EXPECT_NEAR(t1[k], t2[k], 1e-12);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) EXPECT_NEAR(a1(i, j), a2(i, j), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfTest,
                         ::testing::Combine(::testing::Values(1, 6, 16, 40),
                                            ::testing::Values(1, 6, 16, 40)));

TEST(Orgqr, QIsOrthonormal) {
  Rng rng(9);
  const int m = 25, n = 10;
  std::vector<double> buf(static_cast<std::size_t>(m * n));
  fill_general(rng, buf.data(), m, n, m);
  std::vector<double> tau(static_cast<std::size_t>(n));
  MatrixView<double> a(buf.data(), m, n, m);
  blas::geqrf<double>(a, tau, 8);
  blas::orgqr<double>(a, tau);
  // QᵀQ == I.
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (index_t r = 0; r < m; ++r) dot += a(r, i) * a(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-12);
    }
}

}  // namespace
