// Coverage for surfaces not exercised elsewhere: container move semantics,
// energy timeline slicing, zero-size operands in the general triangular
// kernels, warp rounding helpers, and error formatting.
#include <gtest/gtest.h>

#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/batch.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/energy/energy_meter.hpp"
#include "vbatch/kernels/common.hpp"
#include "vbatch/kernels/trsm_vbatched.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

TEST(BatchContainer, MoveTransfersOwnership) {
  Queue q;
  const std::size_t before = q.device().mem_used();
  {
    std::vector<int> sizes{8, 16};
    Batch<double> a(q, sizes);
    Rng rng(1);
    a.fill_spd(rng);
    Batch<double> b(std::move(a));
    EXPECT_EQ(b.count(), 2);
    EXPECT_EQ(b.sizes()[1], 16);
    auto m = b.matrix(1);
    EXPECT_GT(m(0, 0), 0.0);  // data survived the move
  }
  EXPECT_EQ(q.device().mem_used(), before);  // single free, no double free
}

TEST(BatchContainer, ArenaAccountingRoundTrips) {
  Queue q;
  const std::size_t before = q.device().mem_used();
  {
    std::vector<int> sizes{32, 64, 0};
    Batch<double> a(q, sizes);
    EXPECT_GT(q.device().mem_used(), before);
  }
  EXPECT_EQ(q.device().mem_used(), before);
}

TEST(BatchContainer, ZeroSizeMatrixSupported) {
  Queue q;
  std::vector<int> sizes{0, 4};
  Batch<double> a(q, sizes);
  EXPECT_EQ(a.max_size(), 4);
  EXPECT_EQ(a.copy_matrix(0).size(), 0u);
}

TEST(BatchContainer, NegativeSizeRejected) {
  Queue q;
  std::vector<int> sizes{4, -1};
  EXPECT_THROW(Batch<double>(q, sizes), Error);
}

TEST(RectBatchContainer, MismatchedDimensionArraysRejected) {
  Queue q;
  std::vector<int> m{4, 5}, n{4};
  EXPECT_THROW(RectBatch<double>(q, m, n), Error);
}

// ---------------------------------------------------------------------------
// Energy timeline slicing
// ---------------------------------------------------------------------------

TEST(EnergySlicing, T0ExcludesEarlierKernels) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(2);
  auto sizes = uniform_sizes(rng, 100, 96);
  Batch<double> b1(q, sizes);
  potrf_vbatched<double>(q, Uplo::Lower, b1);
  const double mid = q.time();
  Batch<double> b2(q, sizes);
  potrf_vbatched<double>(q, Uplo::Lower, b2);

  const auto whole = energy::gpu_run_energy(q.spec(), energy::PowerModel::k40c(),
                                            energy::PowerModel::dual_e5_2670(),
                                            q.device().timeline(), Precision::Double, 0.0);
  const auto second = energy::gpu_run_energy(q.spec(), energy::PowerModel::k40c(),
                                             energy::PowerModel::dual_e5_2670(),
                                             q.device().timeline(), Precision::Double, mid);
  EXPECT_GT(whole.joules, second.joules);
  EXPECT_NEAR(second.seconds, whole.seconds - mid, whole.seconds * 1e-9);
}

// ---------------------------------------------------------------------------
// General triangular kernels, degenerate shapes
// ---------------------------------------------------------------------------

TEST(TriangularGeneral, ZeroSizeMatricesExitCleanly) {
  sim::Device dev(sim::DeviceSpec::k40c());
  Rng rng(3);
  const std::vector<int> m{0, 6}, n{4, 0};  // one empty per matrix
  std::vector<std::vector<double>> tris(2), bs(2);
  std::vector<double*> tp, bp;
  std::vector<int> lda{1, 6}, ldb{1, 6};
  tris[0].resize(1);
  tris[1].resize(36);
  bs[0].resize(4);
  bs[1].resize(36);
  fill_general(rng, tris[1].data(), 6, 6, 6);
  for (int d = 0; d < 6; ++d) tris[1][static_cast<std::size_t>(d + d * 6)] = 3.0;
  for (auto& t : tris) tp.push_back(t.data());
  for (auto& b : bs) bp.push_back(b.data());

  kernels::TriangularVbatchedArgs<double> args;
  args.side = Side::Left;
  args.a = tp.data();
  args.lda = lda;
  args.b = bp.data();
  args.ldb = ldb;
  args.m = m;
  args.n = n;
  args.max_m = 6;
  args.max_n = 4;
  EXPECT_NO_THROW(kernels::launch_trsm_general(dev, args));
}

TEST(KernelHelpers, RoundUpWarpBounds) {
  const auto spec = sim::DeviceSpec::k40c();
  EXPECT_EQ(kernels::round_up_warp(spec, 1), 32);
  EXPECT_EQ(kernels::round_up_warp(spec, 32), 32);
  EXPECT_EQ(kernels::round_up_warp(spec, 33), 64);
  EXPECT_EQ(kernels::round_up_warp(spec, 5000), spec.max_threads_per_block);
}

// ---------------------------------------------------------------------------
// Error formatting
// ---------------------------------------------------------------------------

TEST(Errors, StatusStringsAndMessageComposition) {
  EXPECT_STREQ(to_string(Status::OutOfDeviceMemory), "out of device memory");
  EXPECT_STREQ(to_string(Status::LaunchFailure), "kernel launch failure");
  try {
    throw_error(Status::InvalidArgument, "test message");
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidArgument);
    EXPECT_NE(std::string(e.what()).find("test message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("invalid argument"), std::string::npos);
  }
}

TEST(Errors, RequirePassesAndThrows) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "broken"), Error);
}

// ---------------------------------------------------------------------------
// Queue basics
// ---------------------------------------------------------------------------

TEST(Queue, ModesAndClockExposure) {
  Queue qf(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Queue qt(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  EXPECT_TRUE(qf.full());
  EXPECT_FALSE(qt.full());
  EXPECT_DOUBLE_EQ(qf.time(), 0.0);
  Rng rng(4);
  auto sizes = uniform_sizes(rng, 10, 32);
  Batch<double> b(qt, sizes);
  potrf_vbatched<double>(qt, Uplo::Lower, b);
  EXPECT_GT(qt.time(), 0.0);
  EXPECT_DOUBLE_EQ(qf.time(), 0.0);  // queues are independent devices
}

}  // namespace
