// Out-of-core streaming (docs/heterogeneous.md, "Out-of-core streaming"):
// the chunked host↔device transfer model and the double-buffered staging
// pipeline of the heterogeneous runtime.
//
// The load-bearing guarantee under test: a run whose staging arena is
// SMALLER than the batch footprint — so every chunk is copied in, computed,
// and written back through a bounded buffer — produces BIT-IDENTICAL
// factors and info to the everything-resident run, for every pool, stream
// count, arena budget, prefetch setting and seed. The transfer model, the
// arena admission, the pipeline placement and the parse grammar are also
// covered as units.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/energy/power_model.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"
#include "vbatch/sim/device.hpp"
#include "vbatch/sim/profile.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::hetero;

template <typename T>
std::vector<std::vector<T>> snapshot(Batch<T>& batch) {
  std::vector<std::vector<T>> out;
  out.reserve(static_cast<std::size_t>(batch.count()));
  for (int i = 0; i < batch.count(); ++i) out.push_back(batch.copy_matrix(i));
  return out;
}

template <typename T>
void expect_bit_identical(const std::vector<std::vector<T>>& a,
                          const std::vector<std::vector<T>>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(0, std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(T)))
        << what << ": matrix " << i << " differs";
  }
}

std::vector<int> test_sizes(int count, int nmax, std::uint64_t seed = 33) {
  Rng rng(seed);
  return gaussian_sizes(rng, count, nmax);
}

/// Batch payload footprint under the default lda = n allocation.
double footprint_bytes(const std::vector<int>& sizes) {
  double bytes = 0.0;
  for (int n : sizes) bytes += static_cast<double>(n) * static_cast<double>(n) * sizeof(double);
  return bytes;
}

// ---------------------------------------------------------------------------
// Transfer model units
// ---------------------------------------------------------------------------

TEST(HeteroOofTransfer, SpecTransferSecondsAreLatencyPlusBytesOverBandwidth) {
  const sim::DeviceSpec k40c = sim::DeviceSpec::k40c();
  // 6 GB over the 6.0 GB/s host→device link: 1 s of wire time + 8 µs setup.
  EXPECT_DOUBLE_EQ(k40c.h2d_seconds(6.0e9), 8.0e-6 + 6.0e9 / (6.0 * 1e9));
  EXPECT_DOUBLE_EQ(k40c.d2h_seconds(6.6e9), 8.0e-6 + 6.6e9 / (6.6 * 1e9));
  // The write-back direction is modelled slightly faster on both cards.
  EXPECT_GT(k40c.d2h_bandwidth_gbps, k40c.h2d_bandwidth_gbps);
  const sim::DeviceSpec p100 = sim::DeviceSpec::p100();
  EXPECT_GT(p100.h2d_bandwidth_gbps, k40c.h2d_bandwidth_gbps);
  EXPECT_LT(p100.h2d_seconds(1e9), k40c.h2d_seconds(1e9));
}

TEST(HeteroOofTransfer, DeviceRecordsTransfersOnTheTimelineLane) {
  sim::Device dev(sim::DeviceSpec::k40c());
  dev.record_transfer(sim::TransferDir::H2D, 0, 1000.0, 0.5, 0.25);
  dev.record_transfer(sim::TransferDir::D2H, 0, 1000.0, 1.0, 0.5);
  dev.record_transfer(sim::TransferDir::H2D, 1, 500.0, 0.75, 0.25);
  const sim::Timeline& tl = dev.timeline();
  ASSERT_EQ(tl.transfers().size(), 3u);
  EXPECT_EQ(tl.transfers()[0].name, "h2d");
  EXPECT_EQ(tl.transfers()[1].dir, sim::TransferDir::D2H);
  EXPECT_EQ(tl.transfers()[2].chunk, 1);
  EXPECT_DOUBLE_EQ(tl.transfer_bytes(sim::TransferDir::H2D), 1500.0);
  EXPECT_DOUBLE_EQ(tl.transfer_bytes(sim::TransferDir::D2H), 1000.0);
  EXPECT_DOUBLE_EQ(tl.transfer_seconds(sim::TransferDir::H2D), 0.5);
  EXPECT_DOUBLE_EQ(tl.transfer_seconds(sim::TransferDir::D2H), 0.5);
  // The device clock covers the last copy's completion.
  EXPECT_GE(dev.time(), 1.5);
  dev.clear_timeline();
  EXPECT_TRUE(tl.transfers().empty());
}

TEST(HeteroOofTransfer, ProfileAggregatesTransferLaneAsPseudoKernels) {
  sim::Device dev(sim::DeviceSpec::k40c());
  dev.record_transfer(sim::TransferDir::H2D, 0, 6.0e9, 0.0, 1.0);
  dev.record_transfer(sim::TransferDir::H2D, 1, 6.0e9, 2.0, 1.0);
  const auto profiles = sim::profile_timeline(dev.timeline());
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].name, "h2d");
  EXPECT_EQ(profiles[0].launches, 2);
  EXPECT_DOUBLE_EQ(profiles[0].seconds, 2.0);
  // GB/s column reads as the achieved link bandwidth; flops stay zero.
  EXPECT_DOUBLE_EQ(profiles[0].gbytes_per_s(), 6.0);
  EXPECT_DOUBLE_EQ(profiles[0].flops, 0.0);
}

// ---------------------------------------------------------------------------
// Scheduler pipeline units (hand-computed virtual-time placements)
// ---------------------------------------------------------------------------

/// Three equal chunks through one streamed executor: h2d = compute = d2h =
/// 1 s each, unbounded arena.
ScheduleParams streamed_params(bool prefetch) {
  ScheduleParams sp;
  sp.owner = {0, 0, 0};
  sp.estimate = {{1.0, 1.0, 1.0}};
  sp.executors = 1;
  sp.h2d = {{1.0, 1.0, 1.0}};
  sp.d2h = {{1.0, 1.0, 1.0}};
  sp.chunk_bytes = {100.0, 100.0, 100.0};
  sp.prefetch = prefetch;
  return sp;
}

TEST(HeteroOofSchedule, SynchronousStagingSerializesTheThreeStages) {
  // No prefetch slot: each chunk's h2d → compute → d2h occupy the executor
  // end to end, so three chunks take 9 s.
  const auto res = run_schedule(streamed_params(false), [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 9.0);
  EXPECT_DOUBLE_EQ(res.busy[0], 3.0);            // compute only
  EXPECT_DOUBLE_EQ(res.h2d_seconds[0], 3.0);
  EXPECT_DOUBLE_EQ(res.d2h_seconds[0], 3.0);
  EXPECT_DOUBLE_EQ(res.h2d_bytes[0], 300.0);
  EXPECT_DOUBLE_EQ(res.pipeline[0], 9.0);        // nothing overlapped
  // Chunk 1 stages strictly after chunk 0's write-back.
  EXPECT_DOUBLE_EQ(res.staging[0][0], 0.0);
  EXPECT_DOUBLE_EQ(res.staging[0][3], 3.0);
  EXPECT_DOUBLE_EQ(res.staging[1][0], 3.0);
  EXPECT_DOUBLE_EQ(res.staging[2][3], 9.0);
}

TEST(HeteroOofSchedule, PrefetchDoubleBuffersTheNextChunk) {
  // One prefetch slot: chunk 1's h2d runs behind chunk 0's compute, so the
  // committed trajectory is h2d [0,1)+[1,2)+[3,4), compute [1,2)+[2,3)+
  // [4,5), d2h [2,3)+[3,4)+[5,6) — makespan 6 s instead of 9.
  const auto res = run_schedule(streamed_params(true), [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, 6.0);
  EXPECT_DOUBLE_EQ(res.busy[0], 3.0);  // compute rate stayed 1.0 throughout
  EXPECT_DOUBLE_EQ(res.pipeline[0], 6.0);
  EXPECT_EQ(res.max_in_flight[0], 2);  // streams + the prefetch slot
  const std::array<double, 4> c0{0.0, 1.0, 2.0, 3.0};
  const std::array<double, 4> c1{1.0, 2.0, 3.0, 4.0};
  const std::array<double, 4> c2{3.0, 4.0, 5.0, 6.0};
  EXPECT_EQ(res.staging[0], c0);
  EXPECT_EQ(res.staging[1], c1);
  EXPECT_EQ(res.staging[2], c2);
}

TEST(HeteroOofSchedule, ArenaBudgetDelaysAdmissionUntilBytesRelease) {
  // Budget 150 with 100-byte chunks: chunk 1's h2d cannot start until chunk
  // 0's d2h completes at t = 3 — the staging windows never overlap in the
  // arena even though the prefetch slot is free.
  ScheduleParams sp = streamed_params(true);
  sp.owner = {0, 0};
  sp.estimate = {{1.0, 1.0}};
  sp.h2d = {{1.0, 1.0}};
  sp.d2h = {{1.0, 1.0}};
  sp.chunk_bytes = {100.0, 100.0};
  sp.arena = {150.0};
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.staging[0][3], 3.0);
  EXPECT_DOUBLE_EQ(res.staging[1][0], 3.0);  // admission waited for the release
  EXPECT_DOUBLE_EQ(res.makespan, 6.0);
  // Arena invariant: at no committed instant do resident bytes exceed the
  // budget (chunk i occupies [h2d_start, d2h_end)).
  for (std::size_t i = 0; i < res.staging.size(); ++i)
    for (std::size_t j = i + 1; j < res.staging.size(); ++j) {
      const bool disjoint =
          res.staging[i][3] <= res.staging[j][0] || res.staging[j][3] <= res.staging[i][0];
      EXPECT_TRUE(disjoint) << "chunks " << i << "/" << j << " co-resident over budget";
    }

  // An unbounded arena (or one that fits both) admits chunk 1 at t = 1.
  sp.arena = {200.0};
  const auto wide = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(wide.staging[1][0], 1.0);
  EXPECT_DOUBLE_EQ(wide.makespan, 4.0);
}

TEST(HeteroOofSchedule, SingleChunkOverBudgetFailsLoudly) {
  ScheduleParams sp = streamed_params(true);
  sp.arena = {50.0};  // every chunk carries 100 bytes
  const std::function<double(int, int)> unit = [](int, int) { return 1.0; };
  EXPECT_THROW((void)run_schedule(sp, unit), vbatch::Error);
}

TEST(HeteroOofSchedule, EmptyTransferRowsReplayTheResidentScheduleExactly) {
  // Attaching the staging fields with every row empty must not perturb the
  // classic schedule by a single clock tick.
  ScheduleParams plain;
  plain.owner = {0, 0, 0, 0};
  plain.estimate = {{1.0, 1.0, 1.0, 1.0}, {1.5, 1.5, 1.5, 1.5}};
  plain.executors = 2;
  const auto base = run_schedule(plain, [&](int, int) { return 1.0; });

  ScheduleParams oof = plain;
  oof.h2d = {{}, {}};
  oof.d2h = {{}, {}};
  oof.arena = {0.0, 0.0};
  oof.prefetch = true;
  const auto res = run_schedule(oof, [&](int, int) { return 1.0; });
  EXPECT_DOUBLE_EQ(res.makespan, base.makespan);
  EXPECT_EQ(res.executed_by, base.executed_by);
  for (std::size_t e = 0; e < base.finish.size(); ++e) {
    EXPECT_DOUBLE_EQ(res.finish[e], base.finish[e]);
    EXPECT_DOUBLE_EQ(res.busy[e], base.busy[e]);
    EXPECT_DOUBLE_EQ(res.h2d_seconds[e], 0.0);
    EXPECT_DOUBLE_EQ(res.pipeline[e], res.occupied[e]);
  }
  for (const auto& st : res.staging)
    EXPECT_EQ(st, (std::array<double, 4>{0.0, 0.0, 0.0, 0.0}));
}

TEST(HeteroOofSchedule, TransferBoundPipelineHidesComputeEntirely)
{
  // Transfer-bound chunks (copies dominate compute): with double buffering
  // the H2D lane never idles after the first chunk, so the makespan
  // approaches the serial wire time of one direction, not the sum of all
  // three stages.
  ScheduleParams sp;
  sp.owner = {0, 0, 0, 0};
  sp.estimate = {{0.1, 0.1, 0.1, 0.1}};
  sp.executors = 1;
  sp.h2d = {{1.0, 1.0, 1.0, 1.0}};
  sp.d2h = {{1.0, 1.0, 1.0, 1.0}};
  sp.chunk_bytes = {100.0, 100.0, 100.0, 100.0};
  sp.prefetch = true;
  const auto fast = run_schedule(sp, [&](int, int) { return 0.1; });
  sp.prefetch = false;
  const auto slow = run_schedule(sp, [&](int, int) { return 0.1; });
  EXPECT_GT(slow.makespan / fast.makespan, 1.5);
  // Pipeline span < busy + transfers: the overlap the ratio measures.
  EXPECT_LT(fast.pipeline[0], fast.busy[0] + fast.h2d_seconds[0] + fast.d2h_seconds[0]);
}

TEST(HeteroOofFault, TransientOnStreamedExecutorChargesTheStagingToo) {
  // A faulted attempt on a streaming executor wastes its copies as well as
  // its compute: the retry re-stages from the pristine host input.
  ScheduleParams sp = streamed_params(true);
  const auto plan = fault::FaultPlan(fault::parse_fault_spec("transient:exec=0,chunk=0,times=1"));
  sp.faults = &plan;
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  ASSERT_EQ(res.retries_total, 1);
  ASSERT_FALSE(res.events.empty());
  const auto& ev = res.events.front();
  EXPECT_EQ(ev.kind, fault::FaultKind::Transient);
  EXPECT_DOUBLE_EQ(ev.waste_seconds, 1.0 + 1.0 + 1.0);  // est + h2d + d2h
  // Every chunk still committed exactly once.
  for (int owner : res.executed_by) EXPECT_EQ(owner, 0);
}

// ---------------------------------------------------------------------------
// Bit-identity: the acceptance criterion
// ---------------------------------------------------------------------------

TEST(HeteroOofIdentity, ArenaSmallerThanFootprintMatchesInCoreBitForBit) {
  const auto sizes = test_sizes(120, 300);
  const double footprint = footprint_bytes(sizes);

  // In-core reference on a single K40c.
  Queue qref;
  Batch<double> ref(qref, sizes);
  Rng fill_ref(7);
  ref.fill_spd(fill_ref);
  (void)potrf_vbatched<double>(qref, Uplo::Lower, ref);
  const auto base = snapshot(ref);
  const std::vector<int> base_info(ref.info().begin(), ref.info().end());

  // Bit-identity must hold for every composition × stream count × arena ×
  // prefetch × seed combination that streams out of core.
  const char* pools[] = {"k40c", "k40c:3streams", "k40c,p100", "cpu,k40c:2streams"};
  for (const char* desc : pools) {
    for (const double frac : {0.45, 0.8}) {
      for (const bool prefetch : {true, false}) {
        for (const std::uint64_t seed : {2016ull, 99ull}) {
          DevicePool pool = DevicePool::parse(desc);
          for (int e = 0; e < pool.size(); ++e)
            if (pool.executor(e).is_gpu())
              pool.executor(e).set_arena_bytes(footprint * frac);
          Queue q;
          Batch<double> batch(q, sizes);
          Rng fill(7);
          batch.fill_spd(fill);
          HeteroOptions opts;
          opts.prefetch = prefetch;
          opts.steal_seed = seed;
          // Finer chunking keeps every single chunk under the tight budgets.
          opts.chunks_per_executor = 8;
          const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
          const std::string what = std::string(desc) + " frac=" + std::to_string(frac) +
                                   " prefetch=" + std::to_string(prefetch) +
                                   " seed=" + std::to_string(seed);
          EXPECT_GT(r.h2d_bytes, 0.0) << what << ": expected out-of-core staging";
          expect_bit_identical(base, snapshot(batch), what);
          for (int i = 0; i < batch.count(); ++i)
            EXPECT_EQ(base_info[static_cast<std::size_t>(i)],
                      batch.info()[static_cast<std::size_t>(i)])
                << what << ": info " << i;
        }
      }
    }
  }
}

TEST(HeteroOofIdentity, ForcedStreamingMatchesResidentClockToClockInFactors) {
  // Staging::Streamed pushes every chunk through the pipeline even though
  // the whole batch fits — factors and info must not move.
  const auto sizes = test_sizes(80, 260, 11);
  DevicePool resident = DevicePool::parse("k40c,cpu");
  Queue q1;
  Batch<double> b1(q1, sizes);
  Rng f1(7);
  b1.fill_spd(f1);
  (void)potrf_vbatched_hetero<double>(resident, Uplo::Lower, b1);

  DevicePool streamed = DevicePool::parse("k40c,cpu");
  Queue q2;
  Batch<double> b2(q2, sizes);
  Rng f2(7);
  b2.fill_spd(f2);
  HeteroOptions opts;
  opts.staging = HeteroOptions::Staging::Streamed;
  const auto r = potrf_vbatched_hetero<double>(streamed, Uplo::Lower, b2, opts);
  EXPECT_TRUE(r.executors[0].streamed);
  EXPECT_GT(r.h2d_bytes, 0.0);
  expect_bit_identical(snapshot(b1), snapshot(b2), "forced streaming");
}

TEST(HeteroOofIdentity, HugeArenaReproducesTheResidentScheduleClockForClock) {
  // Staging::Auto with an arena far above the footprint must take the
  // classic resident path — same factors AND the same virtual-time result,
  // to the last bit of the makespan.
  const auto sizes = test_sizes(60, 220, 5);
  DevicePool plain = DevicePool::parse("k40c,cpu");
  Queue q1;
  Batch<double> b1(q1, sizes);
  Rng f1(7);
  b1.fill_spd(f1);
  const auto r1 = potrf_vbatched_hetero<double>(plain, Uplo::Lower, b1);

  DevicePool wide = DevicePool::parse("k40c:1000gb,cpu");
  Queue q2;
  Batch<double> b2(q2, sizes);
  Rng f2(7);
  b2.fill_spd(f2);
  const auto r2 = potrf_vbatched_hetero<double>(wide, Uplo::Lower, b2);
  EXPECT_DOUBLE_EQ(r2.seconds, r1.seconds);
  EXPECT_DOUBLE_EQ(r2.h2d_bytes, 0.0);
  EXPECT_FALSE(r2.executors[0].streamed);
  expect_bit_identical(snapshot(b1), snapshot(b2), "huge arena");
}

TEST(HeteroOofFault, FaultsDuringStreamingKeepTheFactors) {
  // Transient faults while chunks stream re-stage from the pristine host
  // input: recovery must stay bit-identical to the fault-free streamed run.
  const auto sizes = test_sizes(100, 280, 3);
  const double footprint = footprint_bytes(sizes);

  DevicePool clean = DevicePool::parse("k40c:2streams,k40c");
  for (int e = 0; e < clean.size(); ++e) clean.executor(e).set_arena_bytes(footprint * 0.4);
  Queue q1;
  Batch<double> b1(q1, sizes);
  Rng f1(7);
  b1.fill_spd(f1);
  const auto r1 = potrf_vbatched_hetero<double>(clean, Uplo::Lower, b1);
  EXPECT_GT(r1.h2d_bytes, 0.0);

  DevicePool faulty = DevicePool::parse("k40c:2streams,k40c");
  for (int e = 0; e < faulty.size(); ++e) faulty.executor(e).set_arena_bytes(footprint * 0.4);
  faulty.set_faults(fault::parse_fault_spec("seed=13;transient:rate=0.4"));
  Queue q2;
  Batch<double> b2(q2, sizes);
  Rng f2(7);
  b2.fill_spd(f2);
  const auto r2 = potrf_vbatched_hetero<double>(faulty, Uplo::Lower, b2);
  EXPECT_GT(r2.retries, 0);
  EXPECT_GT(r2.seconds, r1.seconds);  // wasted attempts re-stage their copies
  expect_bit_identical(snapshot(b1), snapshot(b2), "faults during streaming");
}

// ---------------------------------------------------------------------------
// Report plumbing and knobs
// ---------------------------------------------------------------------------

TEST(HeteroOofReport, StagingLedgerAndEnergyReachTheReport) {
  const auto sizes = test_sizes(90, 280, 21);
  const double footprint = footprint_bytes(sizes);

  HeteroOptions opts;
  opts.chunks_per_executor = 8;  // keep each chunk under the tight budget

  DevicePool resident = DevicePool::parse("k40c");
  Queue q1;
  Batch<double> b1(q1, sizes);
  Rng f1(7);
  b1.fill_spd(f1);
  const auto r1 = potrf_vbatched_hetero<double>(resident, Uplo::Lower, b1, opts);

  DevicePool pool = DevicePool::parse("k40c");
  pool.executor(0).set_arena_bytes(footprint * 0.5);
  Queue q2;
  Batch<double> b2(q2, sizes);
  Rng f2(7);
  b2.fill_spd(f2);
  const auto r2 = potrf_vbatched_hetero<double>(pool, Uplo::Lower, b2, opts);
  ASSERT_EQ(r2.executors.size(), 1u);
  const auto& ex = r2.executors[0];
  EXPECT_TRUE(ex.streamed);
  // Every chunk staged exactly once, both ways, over the whole footprint.
  EXPECT_DOUBLE_EQ(ex.h2d_bytes, footprint);
  EXPECT_DOUBLE_EQ(ex.d2h_bytes, footprint);
  EXPECT_DOUBLE_EQ(r2.h2d_bytes, footprint);
  EXPECT_GT(ex.h2d_seconds, 0.0);
  EXPECT_GT(ex.d2h_seconds, 0.0);
  // The pipeline span covers at least the compute and at most the serial
  // sum of the three stages.
  EXPECT_GE(ex.pipeline_seconds, ex.busy_seconds);
  EXPECT_LE(ex.pipeline_seconds,
            ex.busy_seconds + ex.h2d_seconds + ex.d2h_seconds + 1e-12);
  // Transfer energy: charged per wire second on top of the compute
  // integration, so the streamed pool burns more joules than the resident.
  EXPECT_DOUBLE_EQ(ex.transfer_joules,
                   energy::PowerModel::k40c().transfer_watts * (ex.h2d_seconds + ex.d2h_seconds));
  EXPECT_GT(r2.energy.joules, r1.energy.joules);
  // The streamed makespan pays the exposed transfer time.
  EXPECT_GT(r2.seconds, r1.seconds);
  // And the device timeline carries the copies for the profiler.
  const auto profiles =
      sim::profile_timeline(pool.executor(0).queue().device().timeline());
  const bool has_h2d = std::any_of(profiles.begin(), profiles.end(),
                                   [](const auto& p) { return p.name == "h2d"; });
  EXPECT_TRUE(has_h2d);
}

TEST(HeteroOofReport, PrefetchBeatsSynchronousStaging) {
  const auto sizes = test_sizes(110, 300, 17);
  const double footprint = footprint_bytes(sizes);
  double seconds[2] = {0.0, 0.0};
  for (const bool prefetch : {true, false}) {
    DevicePool pool = DevicePool::parse("k40c");
    // Wide enough for two chunks to co-reside, small enough to stream.
    pool.executor(0).set_arena_bytes(footprint * 0.9);
    Queue q;
    Batch<double> batch(q, sizes);
    Rng fill(7);
    batch.fill_spd(fill);
    HeteroOptions opts;
    opts.prefetch = prefetch;
    opts.chunks_per_executor = 8;
    const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts);
    seconds[prefetch ? 0 : 1] = r.seconds;
  }
  EXPECT_LT(seconds[0], seconds[1]);
}

TEST(HeteroOofReport, ResidentStagingPolicyRefusesOversizedBatches) {
  const auto sizes = test_sizes(100, 300, 29);
  DevicePool pool = DevicePool::parse("k40c");
  pool.executor(0).set_arena_bytes(footprint_bytes(sizes) * 0.5);
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  HeteroOptions opts;
  opts.staging = HeteroOptions::Staging::Resident;
  EXPECT_THROW((void)potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch, opts),
               vbatch::Error);
}

TEST(HeteroOofReport, ArenaEnvKnobAppliesOnlyToUnpinnedExecutors) {
  const auto sizes = test_sizes(80, 280, 41);
  const double footprint = footprint_bytes(sizes);
  // Pick an env budget below the footprint so unpinned executors stream.
  const double env_gb = footprint * 0.4 / (1024.0 * 1024.0 * 1024.0);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", env_gb);
  ASSERT_EQ(0, setenv("VBATCH_ARENA_GB", buf, 1));
  DevicePool pool = DevicePool::parse("k40c,k40c:1000gb");
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  const auto r = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  unsetenv("VBATCH_ARENA_GB");
  ASSERT_EQ(r.executors.size(), 2u);
  EXPECT_TRUE(r.executors[0].streamed);    // env default applied
  EXPECT_FALSE(r.executors[1].streamed);   // parse-pinned budget wins

  ASSERT_EQ(0, setenv("VBATCH_ARENA_GB", "not-a-number", 1));
  DevicePool bad = DevicePool::parse("k40c");
  Queue qb;
  Batch<double> bb(qb, sizes);
  Rng fb(7);
  bb.fill_spd(fb);
  EXPECT_THROW((void)potrf_vbatched_hetero<double>(bad, Uplo::Lower, bb), vbatch::Error);
  unsetenv("VBATCH_ARENA_GB");
}

// ---------------------------------------------------------------------------
// DevicePool ':Ngb' grammar
// ---------------------------------------------------------------------------

TEST(DevicePoolArena, ParseArenaSuffixConfiguresTheBudget) {
  DevicePool pool = DevicePool::parse("k40c:2gb,p100");
  EXPECT_DOUBLE_EQ(pool.executor(0).arena_bytes(), 2.0 * 1024 * 1024 * 1024);
  EXPECT_TRUE(pool.executor(0).arena_explicit());
  // The unsuffixed P100 keeps its spec default (16 GB card).
  EXPECT_FALSE(pool.executor(1).arena_explicit());
  EXPECT_DOUBLE_EQ(pool.executor(1).arena_bytes(),
                   static_cast<double>(sim::DeviceSpec::p100().global_mem_bytes));
  // Default K40c budget is its 12 GB card.
  DevicePool plain = DevicePool::parse("k40c");
  EXPECT_DOUBLE_EQ(plain.executor(0).arena_bytes(),
                   static_cast<double>(sim::DeviceSpec::k40c().global_mem_bytes));
}

TEST(DevicePoolArena, SuffixesComposeInEitherOrder) {
  DevicePool a = DevicePool::parse("k40c:4streams:1.5gb");
  EXPECT_EQ(a.executor(0).streams(), 4);
  EXPECT_DOUBLE_EQ(a.executor(0).arena_bytes(), 1.5 * 1024 * 1024 * 1024);
  DevicePool b = DevicePool::parse("k40c:1.5gb:4streams");
  EXPECT_EQ(b.executor(0).streams(), 4);
  EXPECT_DOUBLE_EQ(b.executor(0).arena_bytes(), 1.5 * 1024 * 1024 * 1024);
}

TEST(DevicePoolArena, DescribeRoundTripsTheArenaSuffix) {
  DevicePool pool = DevicePool::parse("k40c:4streams:2gb,p100,cpu");
  EXPECT_EQ(pool.describe(), "k40c#0:4streams:2gb + p100#1 + cpu");
  DevicePool reparsed = DevicePool::parse("k40c:4streams:2gb,p100,cpu");
  EXPECT_EQ(reparsed.describe(), pool.describe());
}

TEST(DevicePoolArena, ParseRejectsBadArenaSuffixes) {
  // Mirror of the ':Nstreams' hardening matrix: every malformed arena
  // suffix fails loudly with a named error, never a degenerate pool.
  const char* bad[] = {
      "k40c:gb",         // missing value
      "k40c:0gb",        // zero budget
      "k40c:-1gb",       // negative budget
      "k40c:xgb",        // non-numeric
      "k40c:1.2.3gb",    // trailing junk inside the number
      "k40c:2gb:3gb",    // duplicate arena suffix
      "k40c:2streams:3streams",  // duplicate stream suffix (regression guard)
      "k40c:",           // dangling colon
      "k40c:2mb",        // unknown unit
      "cpu:1gb",         // the CPU has no arena
  };
  for (const char* desc : bad)
    EXPECT_THROW((void)DevicePool::parse(desc), vbatch::Error) << desc;
}

TEST(DevicePoolArena, SettersValidate) {
  DevicePool pool = DevicePool::parse("k40c,cpu");
  EXPECT_THROW(pool.executor(0).set_arena_gb(0.0), vbatch::Error);
  EXPECT_THROW(pool.executor(0).set_arena_gb(-2.0), vbatch::Error);
  EXPECT_THROW(pool.executor(1).set_arena_gb(1.0), vbatch::Error);  // cpu
  pool.executor(0).set_arena_gb(0.5);
  EXPECT_DOUBLE_EQ(pool.executor(0).arena_bytes(), 0.5 * 1024 * 1024 * 1024);
  EXPECT_TRUE(pool.executor(0).arena_explicit());
}

}  // namespace
