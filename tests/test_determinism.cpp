// Determinism of the parallel host execution engine.
//
// The engine's contract: the host worker count is a wall-clock knob only.
// Per-block costs are merged in block-index order after every functor has
// run, and each block writes only its own output region, so factors, info
// arrays and modelled times must be BIT-identical at 1, 2 and
// hardware_concurrency() worker threads — for both potrf paths and both
// size distributions, at a batch count large enough to trip the parallel
// grid path (grids >= the device's parallel grain).
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace {

using namespace vbatch;

constexpr int kBatch = 512;
constexpr int kNmax = 96;

struct RunOutput {
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
  double seconds = 0.0;
  PotrfPath path = PotrfPath::Auto;
};

RunOutput run_workload(unsigned threads, PotrfPath path, SizeDist dist) {
  util::set_host_threads(threads);
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Rng size_rng(101);
  const auto sizes = make_sizes(dist, size_rng, kBatch, kNmax);
  Batch<double> batch(q, sizes);
  Rng data_rng(202);
  batch.fill_spd(data_rng);

  PotrfOptions opts;
  opts.path = path;
  const PotrfResult r = potrf_vbatched<double>(q, Uplo::Lower, batch, opts);

  RunOutput out;
  out.seconds = r.seconds;
  out.path = r.path_taken;
  out.info.assign(batch.info().begin(), batch.info().end());
  for (int i = 0; i < batch.count(); ++i) out.factors.push_back(batch.copy_matrix(i));
  return out;
}

void expect_bit_identical(const RunOutput& a, const RunOutput& b, unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(a.path, b.path);
  EXPECT_EQ(a.info, b.info);
  // Exact bit comparison, not EXPECT_DOUBLE_EQ tolerance semantics.
  EXPECT_EQ(std::memcmp(&a.seconds, &b.seconds, sizeof(double)), 0)
      << "modelled seconds differ: " << a.seconds << " vs " << b.seconds;
  ASSERT_EQ(a.factors.size(), b.factors.size());
  for (std::size_t i = 0; i < a.factors.size(); ++i) {
    ASSERT_EQ(a.factors[i].size(), b.factors[i].size());
    EXPECT_EQ(std::memcmp(a.factors[i].data(), b.factors[i].data(),
                          a.factors[i].size() * sizeof(double)),
              0)
        << "factor " << i << " differs";
  }
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<PotrfPath, SizeDist>> {
 protected:
  void TearDown() override { util::set_host_threads(0); }  // restore default
};

TEST_P(DeterminismTest, ThreadCountNeverChangesResults) {
  const auto [path, dist] = GetParam();
  const RunOutput base = run_workload(1, path, dist);
  // Sanity: the workload actually factorized (not all-empty / all-failed).
  int ok = 0;
  for (int v : base.info) ok += (v == 0);
  EXPECT_GT(ok, kBatch / 2);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned threads : {2u, hw}) {
    const RunOutput par = run_workload(threads, path, dist);
    expect_bit_identical(base, par, threads);
  }
}

std::string param_name(const ::testing::TestParamInfo<DeterminismTest::ParamType>& info) {
  const auto [path, dist] = info.param;
  std::string name = path == PotrfPath::Fused ? "Fused" : "Separated";
  name += dist == SizeDist::Uniform ? "Uniform" : "Gaussian";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PathsAndDists, DeterminismTest,
    ::testing::Combine(::testing::Values(PotrfPath::Fused, PotrfPath::Separated),
                       ::testing::Values(SizeDist::Uniform, SizeDist::Gaussian)),
    param_name);

TEST(Determinism, EnvVariableSelectsDefaultThreadCount) {
  // VBATCH_NUM_THREADS is read when the pool is first built; set_host_threads
  // overrides it. Both must agree with host_threads().
  util::set_host_threads(2);
  EXPECT_EQ(util::host_threads(), 2u);
  util::set_host_threads(0);
  EXPECT_GE(util::host_threads(), 1u);
}

}  // namespace
