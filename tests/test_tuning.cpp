// Tests for the runtime ISA dispatcher (blas/isa.hpp), the tuning-profile
// machinery (blas/tuning.hpp) and the cache-hierarchy autotuner
// (core/autotune.hpp): conformance of every compiled register tile against
// the reference loops across ISAs and precisions (including tail
// remainders), the bit-reproducibility contract (results are a pure
// function of the (ISA, profile) pair; MC/NC/MR/NR never change bits, only
// the KC split does), profile persistence round-trips, rejection of
// corrupted and stale-version files, and the load-instead-of-sweep fast
// path of ensure_blas_tuned().
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/core/autotune.hpp"
#include "vbatch/cpu/perf_model.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::blas::micro;

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (Isa i : {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512})
    if (isa_supported(i)) out.push_back(i);
  return out;
}

template <typename T>
T make_scalar(double re, double im) {
  if constexpr (is_complex_v<T>) {
    return T(static_cast<real_t<T>>(re), static_cast<real_t<T>>(im));
  } else {
    return static_cast<T>(re);
  }
}

template <typename T>
double tol_for(index_t k) {
  const double eps = static_cast<double>(std::numeric_limits<real_t<T>>::epsilon());
  return 64.0 * eps * static_cast<double>(std::max<index_t>(k, 1));
}

template <typename T>
double max_rel_diff(ConstMatrixView<T> x, ConstMatrixView<T> y) {
  double diff = 0.0, scale = 1.0;
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) {
      diff = std::max(diff, static_cast<double>(std::abs(x(i, j) - y(i, j))));
      scale = std::max(scale, static_cast<double>(std::abs(y(i, j))));
    }
  return diff / scale;
}

// Runs the packed engine on a deterministic problem and returns the raw
// result buffer (for bitwise comparisons across profiles/ISAs).
template <typename T>
std::vector<T> gemm_bits(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                         const KernelShape* shape = nullptr) {
  const index_t ar = ta == Trans::NoTrans ? m : k;
  const index_t ac = ta == Trans::NoTrans ? k : m;
  const index_t br = tb == Trans::NoTrans ? k : n;
  const index_t bc = tb == Trans::NoTrans ? n : k;
  Rng rng(99);
  std::vector<T> abuf(static_cast<std::size_t>(ar * ac) + 1),
      bbuf(static_cast<std::size_t>(br * bc) + 1), cbuf(static_cast<std::size_t>(m * n) + 1);
  if (ar && ac) fill_general(rng, abuf.data(), ar, ac, ar);
  if (br && bc) fill_general(rng, bbuf.data(), br, bc, br);
  ConstMatrixView<T> a(abuf.data(), ar, ac, ar);
  ConstMatrixView<T> b(bbuf.data(), br, bc, br);
  MatrixView<T> c(cbuf.data(), m, n, m);
  if (shape)
    gemm_blocked_shaped<T>(ta, tb, make_scalar<T>(1.1, -0.2), a, b, T(0), c, *shape);
  else
    gemm_blocked<T>(ta, tb, make_scalar<T>(1.1, -0.2), a, b, T(0), c);
  return cbuf;
}

template <typename T>
void expect_conformance(index_t m, index_t n, index_t k, const char* what) {
  const index_t ar = m, ac = k;  // NoTrans x Trans covers both packing paths
  Rng rng(7);
  std::vector<T> abuf(static_cast<std::size_t>(ar * ac) + 1),
      bbuf(static_cast<std::size_t>(n * k) + 1), cblk(static_cast<std::size_t>(m * n) + 1);
  if (m && k) fill_general(rng, abuf.data(), m, k, m);
  if (n && k) fill_general(rng, bbuf.data(), n, k, n);
  fill_general(rng, cblk.data(), std::max<index_t>(m, 1), std::max<index_t>(n, 1),
               std::max<index_t>(m, 1));
  auto cref = cblk;
  ConstMatrixView<T> a(abuf.data(), m, k, m);
  ConstMatrixView<T> b(bbuf.data(), n, k, n);
  MatrixView<T> c1(cblk.data(), m, n, m);
  MatrixView<T> c2(cref.data(), m, n, m);
  const T alpha = make_scalar<T>(1.3, -0.4), beta = make_scalar<T>(-0.7, 0.2);
  gemm_blocked<T>(Trans::NoTrans, Trans::Trans, alpha, a, b, beta, c1);
  blas::gemm_ref<T>(Trans::NoTrans, Trans::Trans, alpha, a, b, beta, c2);
  ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k))
      << what << " m=" << m << " n=" << n << " k=" << k;
}

// ---------------------------------------------------------------------------
// ISA detection / selection
// ---------------------------------------------------------------------------

TEST(TuningIsaTest, ParseRoundTripsEveryName) {
  for (Isa i : {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    const auto parsed = parse_isa(to_string(i));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, i);
  }
  EXPECT_FALSE(parse_isa("avx9000").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
}

TEST(TuningIsaTest, ScalarAlwaysSupportedAndDetectNeverPicksAvx512) {
  EXPECT_TRUE(isa_supported(Isa::Scalar));
  EXPECT_TRUE(isa_supported(detect_isa()));
  EXPECT_NE(detect_isa(), Isa::Avx512);  // opt-in only
}

TEST(TuningIsaTest, SetIsaClampsToSupportedAndGuardRestores) {
  const Isa before = active_isa();
  {
    IsaGuard guard(Isa::Avx512);
    EXPECT_TRUE(isa_supported(active_isa()));
    // The profile always tracks the installed ISA.
    EXPECT_EQ(active_profile().isa, active_isa());
  }
  EXPECT_EQ(active_isa(), before);
  {
    IsaGuard guard(Isa::Scalar);
    EXPECT_EQ(active_isa(), Isa::Scalar);
  }
  EXPECT_EQ(active_isa(), before);
}

// ---------------------------------------------------------------------------
// Profile defaults / validation
// ---------------------------------------------------------------------------

TEST(TuningProfileTest, ScalarDefaultsMatchTheTilingAnchor) {
  const TuningProfile p = TuningProfile::defaults(Isa::Scalar);
  EXPECT_EQ(p.shapes[0].mr, Tiling<float>::MR);
  EXPECT_EQ(p.shapes[0].nr, Tiling<float>::NR);
  EXPECT_EQ(p.shapes[0].kc, Tiling<float>::KC);
  EXPECT_EQ(p.shapes[0].mc, Tiling<float>::MC);
  EXPECT_EQ(p.shapes[0].nc, Tiling<float>::NC);
  EXPECT_EQ(p.shapes[1].mr, Tiling<double>::MR);
  EXPECT_EQ(p.shapes[1].kc, Tiling<double>::KC);
  EXPECT_EQ(p.shapes[2].nr, Tiling<std::complex<float>>::NR);
  EXPECT_EQ(p.shapes[3].mr, Tiling<std::complex<double>>::MR);
  // The crossover matches the historical use_blocked constants.
  EXPECT_EQ(p.shapes[1].min_m, Tiling<double>::MR);
  EXPECT_DOUBLE_EQ(p.shapes[1].min_mnk, 4096.0);
}

TEST(TuningProfileTest, ValidateRejectsOutOfRangeShapes) {
  TuningProfile p = TuningProfile::defaults(Isa::Scalar);
  std::string why;
  EXPECT_TRUE(validate_profile(p, &why)) << why;
  p.shapes[0].mr = 0;
  EXPECT_FALSE(validate_profile(p, &why));
  EXPECT_NE(why.find("mr"), std::string::npos);
  p = TuningProfile::defaults(Isa::Scalar);
  p.shapes[2].nr = kMaxNR + 1;
  EXPECT_FALSE(validate_profile(p, &why));
  p = TuningProfile::defaults(Isa::Scalar);
  p.shapes[3].mc = 1;  // < mr is inconsistent
  p.shapes[3].mr = 4;
  EXPECT_FALSE(validate_profile(p, &why));
  EXPECT_THROW(set_tuning_profile(p), Error);
}

TEST(TuningProfileTest, SupportedTilesCoverTheDefaults) {
  for (Isa isa : supported_isas()) {
    const TuningProfile p = TuningProfile::defaults(isa);
    const auto ftiles = supported_tiles<float>(isa);
    const auto dtiles = supported_tiles<double>(isa);
    ASSERT_FALSE(ftiles.empty());
    ASSERT_FALSE(dtiles.empty());
    auto has = [](const std::vector<TilePair>& v, int mr, int nr) {
      for (const TilePair& t : v)
        if (t.mr == mr && t.nr == nr) return true;
      return false;
    };
    EXPECT_TRUE(has(ftiles, p.shapes[0].mr, p.shapes[0].nr)) << to_string(isa);
    EXPECT_TRUE(has(dtiles, p.shapes[1].mr, p.shapes[1].nr)) << to_string(isa);
  }
}

TEST(TuningProfileTest, UseBlockedFollowsTheProfileCrossover) {
  TuningProfile p = active_profile();
  p.shapes[1].min_mnk = 1e9;  // nothing short of n=1000 qualifies
  {
    ProfileGuard guard(p);
    EXPECT_FALSE(blas::micro::use_blocked<double>(64, 64, 64));
  }
  EXPECT_TRUE(blas::micro::use_blocked<double>(64, 64, 64));
}

// ---------------------------------------------------------------------------
// Conformance across ISAs, precisions, tiles and tail remainders
// ---------------------------------------------------------------------------

template <typename T>
class TuningConformanceTest : public ::testing::Test {};

using Precisions = ::testing::Types<float, double, std::complex<float>, std::complex<double>>;
TYPED_TEST_SUITE(TuningConformanceTest, Precisions);

TYPED_TEST(TuningConformanceTest, EveryIsaMatchesRefIncludingTails) {
  using T = TypeParam;
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const KernelShape& s = shape_of<T>(active_profile());
    // Exact multiples of the tile plus every remainder class around it.
    const index_t ms[] = {1, s.mr - 1, s.mr, 2 * s.mr + 1, 3 * s.mr + 2};
    const index_t ns[] = {1, s.nr, 2 * s.nr + 1, 17};
    for (index_t m : ms)
      for (index_t n : ns)
        for (index_t k : {index_t{1}, index_t{9}, s.kc + 3})
          expect_conformance<T>(std::max<index_t>(m, 1), n, k, to_string(isa));
  }
}

TYPED_TEST(TuningConformanceTest, EveryCompiledTileMatchesRef) {
  using T = TypeParam;
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    for (const TilePair& t : supported_tiles<T>(isa)) {
      KernelShape s = shape_of<T>(active_profile());
      s.mr = t.mr;
      s.nr = t.nr;
      s.mc = std::max<index_t>(s.mc / t.mr * t.mr, t.mr);
      s.nc = std::max<index_t>(s.nc / t.nr * t.nr, t.nr);
      const index_t m = 2 * t.mr + 1, n = 2 * t.nr + 1, k = 37;
      Rng rng(23);
      std::vector<T> abuf(static_cast<std::size_t>(m * k)), bbuf(static_cast<std::size_t>(k * n)),
          cblk(static_cast<std::size_t>(m * n));
      fill_general(rng, abuf.data(), m, k, m);
      fill_general(rng, bbuf.data(), k, n, k);
      fill_general(rng, cblk.data(), m, n, m);
      auto cref = cblk;
      ConstMatrixView<T> a(abuf.data(), m, k, m);
      ConstMatrixView<T> b(bbuf.data(), k, n, k);
      MatrixView<T> c1(cblk.data(), m, n, m);
      MatrixView<T> c2(cref.data(), m, n, m);
      gemm_blocked_shaped<T>(Trans::NoTrans, Trans::NoTrans, make_scalar<T>(0.9, 0.1), a, b,
                             make_scalar<T>(1.0, 0.0), c1, s);
      blas::gemm_ref<T>(Trans::NoTrans, Trans::NoTrans, make_scalar<T>(0.9, 0.1), a, b,
                        make_scalar<T>(1.0, 0.0), c2);
      ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k))
          << to_string(isa) << " tile " << t.mr << "x" << t.nr;
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-reproducibility contract
// ---------------------------------------------------------------------------

TEST(TuningDeterminismTest, SameIsaAndProfileAreBitIdentical) {
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    const auto r1 = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);
    const auto r2 = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);
    ASSERT_EQ(std::memcmp(r1.data(), r2.data(), r1.size() * sizeof(double)), 0)
        << to_string(isa);
  }
}

TEST(TuningDeterminismTest, OuterBlockingNeverChangesBits) {
  // MC/NC/MR/NR partition the *output*; only the KC split orders the
  // accumulation. Changing everything but kc must be bit-identical — this
  // is what lets the autotuner move the outer blocking freely and what the
  // balanced NC split relies on.
  for (Isa isa : supported_isas()) {
    IsaGuard guard(isa);
    KernelShape s = shape_of<double>(active_profile());
    const auto base = gemm_bits<double>(Trans::NoTrans, Trans::NoTrans, 70, 90, 110, &s);
    KernelShape mod = s;
    mod.mc = 2 * s.mr;
    mod.nc = 3 * s.nr;
    const auto blocked = gemm_bits<double>(Trans::NoTrans, Trans::NoTrans, 70, 90, 110, &mod);
    ASSERT_EQ(std::memcmp(base.data(), blocked.data(), base.size() * sizeof(double)), 0)
        << to_string(isa) << ": outer blocking changed bits";
  }
}

TEST(TuningDeterminismTest, ScalarTileShapeNeverChangesBits) {
  // Under Isa::Scalar every tile accumulates l-outer — mr/nr are free too.
  IsaGuard guard(Isa::Scalar);
  KernelShape s = shape_of<double>(active_profile());
  const auto base = gemm_bits<double>(Trans::Trans, Trans::NoTrans, 53, 61, 140, &s);
  KernelShape mod = s;
  mod.mr = 7;
  mod.nr = 3;
  mod.mc = 35;
  mod.nc = 27;
  const auto other = gemm_bits<double>(Trans::Trans, Trans::NoTrans, 53, 61, 140, &mod);
  ASSERT_EQ(std::memcmp(base.data(), other.data(), base.size() * sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

class TuningPersistTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "vbatch_tuning_test.json";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TuningPersistTest, SaveLoadRoundTripsExactly) {
  TuningProfile p = TuningProfile::defaults(active_isa());
  p.shapes[1].kc = 192;
  p.shapes[1].nc = 384;
  p.shapes[0].min_mnk = 8192.0;
  std::string err;
  ASSERT_TRUE(save_tuning_profile(p, path_, &err)) << err;
  std::string why;
  const auto loaded = load_tuning_profile(path_, &why);
  ASSERT_TRUE(loaded.has_value()) << why;
  EXPECT_TRUE(*loaded == p);
}

TEST_F(TuningPersistTest, ReloadedProfileGivesByteIdenticalResults) {
  const TuningProfile p = active_profile();
  std::string err;
  ASSERT_TRUE(save_tuning_profile(p, path_, &err)) << err;
  const auto before = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);
  const auto loaded = load_tuning_profile(path_);
  ASSERT_TRUE(loaded.has_value());
  ProfileGuard guard(*loaded);
  const auto after = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);
  ASSERT_EQ(std::memcmp(before.data(), after.data(), before.size() * sizeof(double)), 0);
}

TEST_F(TuningPersistTest, RejectsMissingCorruptAndStaleFiles) {
  std::string why;
  EXPECT_FALSE(load_tuning_profile(path_ + ".nope", &why).has_value());

  std::ofstream(path_) << "this is not json at all";
  EXPECT_FALSE(load_tuning_profile(path_, &why).has_value());
  EXPECT_NE(why.find("not a vbatch tuning file"), std::string::npos);

  // A stale format version must be rejected so the caller re-tunes.
  std::ofstream(path_) << "{\"vbatch_tuning\": true, \"version\": 1, \"isa\": \"scalar\"}";
  EXPECT_FALSE(load_tuning_profile(path_, &why).has_value());
  EXPECT_NE(why.find("stale format version"), std::string::npos);

  // Unknown ISA names and out-of-range fields are rejected, not clamped.
  TuningProfile p = TuningProfile::defaults(Isa::Scalar);
  std::string err;
  ASSERT_TRUE(save_tuning_profile(p, path_, &err)) << err;
  {
    std::ifstream in(path_);
    std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    const auto pos = text.find("\"mr\": 8");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "\"mr\": 999");
    std::ofstream(path_) << text;
  }
  EXPECT_FALSE(load_tuning_profile(path_, &why).has_value());
  EXPECT_NE(why.find("invalid profile"), std::string::npos);
}

TEST_F(TuningPersistTest, CachePathHonoursEnvOverride) {
  ASSERT_EQ(setenv("VBATCH_TUNING_FILE", path_.c_str(), 1), 0);
  EXPECT_EQ(tuning_cache_path(Isa::Avx2), path_);
  unsetenv("VBATCH_TUNING_FILE");
  const std::string def = tuning_cache_path(Isa::Avx2);
  EXPECT_NE(def.find("vbatch/tuning-"), std::string::npos);
  EXPECT_NE(def.find("avx2.json"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Autotuner
// ---------------------------------------------------------------------------

TEST(TuningAutotuneTest, CacheInfoIsSane) {
  const CacheInfo ci = CacheInfo::detect();
  EXPECT_GE(ci.l1d, 4u * 1024u);
  EXPECT_GE(ci.l2, ci.l1d);
  EXPECT_GE(ci.l3, ci.l2);
}

TEST(TuningAutotuneTest, SweepInstallsAValidProfileAndSecondRunLoadsIt) {
  const std::string path = ::testing::TempDir() + "vbatch_autotune_test.json";
  std::remove(path.c_str());
  const TuningProfile before = active_profile();

  BlasTuneSettings s;
  s.cache_path = path;
  s.bench_n = 64;  // keep the sweep fast; candidate ranking is not under test
  s.reps = 1;
  const BlasTuneResult first = ensure_blas_tuned(s);
  EXPECT_FALSE(first.loaded_from_cache);
  EXPECT_GT(first.candidates_swept, 0);
  std::string why;
  EXPECT_TRUE(validate_profile(first.profile, &why)) << why;
  EXPECT_EQ(first.profile.isa, active_isa());
  EXPECT_TRUE(first.profile == active_profile());
  const auto tuned_bits = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);

  // Second run: the persisted profile short-circuits the sweep and the
  // engine produces byte-identical factors.
  reset_tuning_profile();
  const BlasTuneResult second = ensure_blas_tuned(s);
  EXPECT_TRUE(second.loaded_from_cache);
  EXPECT_EQ(second.candidates_swept, 0);
  EXPECT_TRUE(second.profile == first.profile);
  const auto reloaded_bits = gemm_bits<double>(Trans::NoTrans, Trans::Trans, 67, 45, 300);
  EXPECT_EQ(std::memcmp(tuned_bits.data(), reloaded_bits.data(),
                        tuned_bits.size() * sizeof(double)),
            0);

  set_tuning_profile(before);
  std::remove(path.c_str());
}

TEST(TuningAutotuneTest, BenchmarkShapeMeasuresSomething) {
  const KernelShape s = shape_of<double>(active_profile());
  EXPECT_GT(benchmark_shape<double>(s, 48, 1), 0.0);
}

TEST(TuningAutotuneTest, HostCalibratedCpuSpecTracksTheActiveIsa) {
  const cpu::CpuSpec spec = cpu::CpuSpec::host_calibrated(/*bench_n=*/48, /*reps=*/1);
  EXPECT_GE(spec.cores, 1);
  EXPECT_GT(spec.core_peak_gflops(Precision::Single), 0.0);
  EXPECT_GT(spec.core_peak_gflops(Precision::Double), 0.0);
  EXPECT_NE(std::string(spec.name).find(to_string(active_isa())), std::string::npos);
}

}  // namespace
