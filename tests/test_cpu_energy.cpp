// Tests for the CPU baselines (§IV-F) and the energy models (§IV-G).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/util/flops.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/cpu/cpu_batched.hpp"
#include "vbatch/cpu/mkl_compat.hpp"
#include "vbatch/cpu/perf_model.hpp"
#include "vbatch/energy/energy_meter.hpp"
#include "vbatch/energy/power_model.hpp"
#include "vbatch/util/thread_pool.hpp"

namespace {

using namespace vbatch;
using cpu::CpuSpec;
using cpu::Schedule;

// ---------------------------------------------------------------------------
// Performance model properties
// ---------------------------------------------------------------------------

TEST(CpuModel, PeaksMatchSandyBridge) {
  const auto s = CpuSpec::dual_e5_2670();
  EXPECT_NEAR(s.total_peak_gflops(Precision::Double), 332.8, 1.0);
  EXPECT_NEAR(s.total_peak_gflops(Precision::Single), 665.6, 1.0);
}

TEST(CpuModel, EfficiencyRampsWithSize) {
  const auto s = CpuSpec::dual_e5_2670();
  double prev = 0.0;
  for (int n : {8, 16, 32, 64, 128, 256, 512, 1024}) {
    const double e = s.lapack_efficiency(Precision::Double, n);
    EXPECT_GT(e, prev);
    EXPECT_LT(e, 1.0);
    prev = e;
  }
  EXPECT_LT(s.lapack_efficiency(Precision::Double, 16), 0.3);
  EXPECT_GT(s.lapack_efficiency(Precision::Double, 512), 0.7);
}

TEST(CpuModel, ParallelEfficiencyPunishesSmallMatrices) {
  const auto s = CpuSpec::dual_e5_2670();
  EXPECT_LT(s.parallel_efficiency(64), 0.05);
  EXPECT_GT(s.parallel_efficiency(2000), 0.9);
}

TEST(CpuModel, MultithreadedSlowerThanSixteenSequentialForSmall) {
  // For n=64, 16 matrices: one-core-per-matrix beats all-cores-per-matrix.
  const auto s = CpuSpec::dual_e5_2670();
  const double work = flops::potrf(64);
  const double per_core = s.core_seconds(Precision::Double, 64, work);  // 16 run in parallel
  const double mt = 16.0 * s.multithreaded_seconds(Precision::Double, 64, work);
  EXPECT_LT(per_core, mt);
}

// ---------------------------------------------------------------------------
// CPU batched baselines
// ---------------------------------------------------------------------------

struct CpuProblem {
  std::vector<int> n, lda;
  std::vector<std::vector<double>> data, orig;
  std::vector<double*> ptrs;
  std::vector<int> info;

  explicit CpuProblem(const std::vector<int>& sizes, std::uint64_t seed) : n(sizes) {
    Rng rng(seed);
    for (int s : n) {
      lda.push_back(std::max(1, s));
      data.emplace_back(static_cast<std::size_t>(std::max(1, s) * std::max(1, s)));
      if (s > 0) fill_spd(rng, data.back().data(), s, s);
      orig.push_back(data.back());
    }
    for (auto& d : data) ptrs.push_back(d.data());
    info.assign(n.size(), 0);
  }

  void check_factors() const {
    for (std::size_t i = 0; i < n.size(); ++i) {
      ASSERT_EQ(info[i], 0);
      if (n[i] == 0) continue;
      ConstMatrixView<double> o(orig[i].data(), n[i], n[i], n[i]);
      ConstMatrixView<double> f(data[i].data(), n[i], n[i], n[i]);
      EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower, o, f), 1e-13);
    }
  }
};

class CpuScheduleTest : public ::testing::TestWithParam<Schedule> {};

TEST_P(CpuScheduleTest, PerCoreFactorsCorrectly) {
  Rng rng(3);
  auto sizes = uniform_sizes(rng, 40, 64);
  CpuProblem prob(sizes, 7);
  const auto r = cpu::potrf_batched_per_core<double>(CpuSpec::dual_e5_2670(), GetParam(),
                                                     Uplo::Lower, prob.n, prob.ptrs.data(),
                                                     prob.lda, prob.info, true);
  EXPECT_GT(r.gflops(), 0.0);
  prob.check_factors();
}

INSTANTIATE_TEST_SUITE_P(Schedules, CpuScheduleTest,
                         ::testing::Values(Schedule::Static, Schedule::Dynamic));

TEST(CpuBatched, DynamicNeverSlowerThanStatic) {
  // Adversarial ordering: big matrices all land on the same static core.
  std::vector<int> sizes;
  for (int i = 0; i < 160; ++i) sizes.push_back(i % 16 == 0 ? 256 : 16);
  CpuProblem prob(sizes, 11);
  const auto spec = CpuSpec::dual_e5_2670();
  const auto st = cpu::potrf_batched_per_core<double>(spec, Schedule::Static, Uplo::Lower,
                                                      prob.n, prob.ptrs.data(), prob.lda,
                                                      prob.info, false);
  const auto dy = cpu::potrf_batched_per_core<double>(spec, Schedule::Dynamic, Uplo::Lower,
                                                      prob.n, prob.ptrs.data(), prob.lda,
                                                      prob.info, false);
  EXPECT_LT(dy.seconds, st.seconds * 0.35);  // 16 size-256 tasks on one core vs spread
}

TEST(CpuBatched, MultithreadedFactorsCorrectlyButLags) {
  Rng rng(13);
  auto sizes = uniform_sizes(rng, 30, 96);
  CpuProblem prob(sizes, 17);
  const auto spec = CpuSpec::dual_e5_2670();
  const auto mt = cpu::potrf_batched_multithreaded<double>(spec, Uplo::Lower, prob.n,
                                                           prob.ptrs.data(), prob.lda,
                                                           prob.info, true);
  prob.check_factors();
  const auto dy = cpu::potrf_batched_per_core<double>(spec, Schedule::Dynamic, Uplo::Lower,
                                                      prob.n, prob.ptrs.data(), prob.lda,
                                                      prob.info, false);
  EXPECT_GT(mt.seconds, dy.seconds);  // §IV-F: multithreaded "lags behind"
}

TEST(MklCompat, SequentialPotrfReportsInfo) {
  std::vector<double> bad(16, 0.0);
  MatrixView<double> a(bad.data(), 4, 4, 4);
  const auto r = cpu::potrf_sequential<double>(CpuSpec::dual_e5_2670(), Uplo::Lower, a);
  EXPECT_EQ(r.info, 1);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.parallel_for(500, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  util::ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a worker must not deadlock on the
  // shared queue: it runs inline on the calling worker.
  util::ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(8, [&](int outer) {
    pool.parallel_for(8, [&](int inner) {
      hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HostPoolHonorsSetHostThreads) {
  const unsigned before = util::host_threads();
  util::set_host_threads(3);
  EXPECT_EQ(util::host_threads(), 3u);
  EXPECT_EQ(util::host_pool().size(), 3u);
  util::set_host_threads(before);
}

// ---------------------------------------------------------------------------
// Energy (§IV-G)
// ---------------------------------------------------------------------------

TEST(PowerModel, IdleAndPeakBounds) {
  const auto gpu = energy::PowerModel::k40c();
  EXPECT_DOUBLE_EQ(gpu.watts(0.0), gpu.idle_watts);
  EXPECT_DOUBLE_EQ(gpu.watts(1.0), gpu.max_watts);
  EXPECT_GT(gpu.watts(0.5), gpu.idle_watts);
  EXPECT_LT(gpu.watts(0.5), gpu.max_watts);
}

TEST(PowerModel, MonotoneInUtilization) {
  const auto cpu = energy::PowerModel::dual_e5_2670();
  double prev = -1.0;
  for (double u : {0.0, 0.1, 0.3, 0.5, 0.8, 1.0}) {
    const double w = cpu.watts(u);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Energy, GpuRunIntegratesTimeline) {
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(5);
  auto sizes = uniform_sizes(rng, 200, 128);
  Batch<double> batch(q, sizes);
  potrf_vbatched<double>(q, Uplo::Lower, batch);

  const auto e = energy::gpu_run_energy(q.spec(), energy::PowerModel::k40c(),
                                        energy::PowerModel::dual_e5_2670(),
                                        q.device().timeline(), Precision::Double);
  EXPECT_GT(e.joules, 0.0);
  EXPECT_GT(e.seconds, 0.0);
  // Average power within physical bounds (GPU active + CPU idle).
  EXPECT_GT(e.avg_watts(), energy::PowerModel::k40c().idle_watts);
  EXPECT_LT(e.avg_watts(), 235.0 + 290.0);
}

TEST(Energy, CpuRunChargesGpuIdle) {
  const auto e = energy::cpu_run_energy(energy::PowerModel::dual_e5_2670(),
                                        energy::PowerModel::k40c(), 2.0, 100.0, 333.0);
  EXPECT_DOUBLE_EQ(e.seconds, 2.0);
  EXPECT_GT(e.joules, 2.0 * (70.0 + 25.0));  // above combined idle
}

TEST(Energy, FasterRunAtSamePowerUsesLessEnergy) {
  const auto cpu = energy::PowerModel::dual_e5_2670();
  const auto gpu_idle = energy::PowerModel::k40c();
  const auto slow = energy::cpu_run_energy(cpu, gpu_idle, 4.0, 50.0, 333.0);
  const auto fast = energy::cpu_run_energy(cpu, gpu_idle, 1.0, 200.0, 333.0);
  EXPECT_LT(fast.joules, slow.joules);
}

TEST(Energy, GpuMoreEfficientThanCpuOnBatchedWorkload) {
  // The §IV-G headline: for a vbatched dpotrf workload, GPU energy-to-
  // solution beats the best CPU implementation (up to ~3×).
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Rng rng(7);
  auto sizes = uniform_sizes(rng, 800, 256);
  Batch<double> batch(q, sizes);
  potrf_vbatched<double>(q, Uplo::Lower, batch);
  const auto gpu_e = energy::gpu_run_energy(q.spec(), energy::PowerModel::k40c(),
                                            energy::PowerModel::dual_e5_2670(),
                                            q.device().timeline(), Precision::Double);

  const auto cpu_spec = CpuSpec::dual_e5_2670();
  std::vector<int> lda(sizes.begin(), sizes.end());
  std::vector<int> info(sizes.size(), 0);
  std::vector<double*> nullptrs(sizes.size(), nullptr);
  const auto cpu_r = cpu::potrf_batched_per_core<double>(cpu_spec, Schedule::Dynamic,
                                                         Uplo::Lower, sizes, nullptrs.data(),
                                                         lda, info, false);
  const auto cpu_e = energy::cpu_run_energy(energy::PowerModel::dual_e5_2670(),
                                            energy::PowerModel::k40c(), cpu_r.seconds,
                                            cpu_r.gflops(),
                                            cpu_spec.total_peak_gflops(Precision::Double));
  EXPECT_LT(gpu_e.joules, cpu_e.joules);
}

}  // namespace
