// Direct kernel-level tests for the LU and QR device kernels (the
// end-to-end drivers are covered in test_extensions; these pin down each
// kernel's contract in isolation).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/kernels/geqrf_kernels.hpp"
#include "vbatch/kernels/getrf_kernels.hpp"
#include "vbatch/sim/device.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::kernels;

sim::Device make_dev() { return sim::Device(sim::DeviceSpec::k40c()); }

struct LuBatch {
  std::vector<int> n, lda, info;
  std::vector<std::vector<double>> data;
  std::vector<double*> ptrs;
  std::vector<std::vector<int>> piv;
  std::vector<int*> piv_ptrs;

  explicit LuBatch(std::vector<int> sizes, std::uint64_t seed) : n(std::move(sizes)) {
    Rng rng(seed);
    for (int s : n) {
      lda.push_back(std::max(1, s));
      data.emplace_back(static_cast<std::size_t>(std::max(1, s) * std::max(1, s)));
      fill_general(rng, data.back().data(), s, s, std::max(1, s));
      piv.emplace_back(static_cast<std::size_t>(std::max(1, s)), 0);
    }
    for (auto& d : data) ptrs.push_back(d.data());
    for (auto& p : piv) piv_ptrs.push_back(p.data());
    info.assign(n.size(), 0);
  }
};

// ---------------------------------------------------------------------------
// LU panel
// ---------------------------------------------------------------------------

TEST(GetrfPanelKernel, MatchesReferencePanelFactorization) {
  auto dev = make_dev();
  LuBatch tb({24, 40}, 501);
  LuBatch ref = tb;  // ref.ptrs point into ref copies? No: copied pointers...
  // Rebuild reference data copies explicitly (the copy above shares no
  // storage for `data`, but `ptrs` still reference tb's buffers).
  for (std::size_t i = 0; i < ref.data.size(); ++i) ref.ptrs[i] = ref.data[i].data();

  GetrfPanelArgs<double> args;
  args.batch = {tb.ptrs.data(), tb.n, tb.lda};
  args.m = tb.n;
  args.offset = 0;
  args.NB = 16;
  args.ipiv = tb.piv_ptrs.data();
  args.info = tb.info;
  launch_getrf_panel(dev, args);

  for (std::size_t i = 0; i < tb.n.size(); ++i) {
    const int n = tb.n[i];
    // Reference: getf2 on the leading n×16 panel.
    MatrixView<double> panel(ref.data[i].data(), n, 16, n);
    std::vector<int> rpiv(16);
    ASSERT_EQ(blas::getf2<double>(panel, rpiv), 0);
    for (int c = 0; c < 16; ++c) {
      EXPECT_EQ(tb.piv[i][static_cast<std::size_t>(c)], rpiv[static_cast<std::size_t>(c)]);
      for (int r = 0; r < n; ++r)
        EXPECT_NEAR(tb.data[i][static_cast<std::size_t>(r + c * n)], panel(r, c), 1e-12);
    }
  }
}

TEST(GetrfPanelKernel, GlobalizesPivotsAtOffset) {
  auto dev = make_dev();
  LuBatch tb({32}, 503);
  GetrfPanelArgs<double> args;
  args.batch = {tb.ptrs.data(), tb.n, tb.lda};
  args.m = tb.n;
  args.offset = 16;
  args.NB = 8;
  args.ipiv = tb.piv_ptrs.data();
  args.info = tb.info;
  launch_getrf_panel(dev, args);
  for (int k = 16; k < 24; ++k) {
    EXPECT_GE(tb.piv[0][static_cast<std::size_t>(k)], k + 1);  // global, 1-based
    EXPECT_LE(tb.piv[0][static_cast<std::size_t>(k)], 32);
  }
}

TEST(GetrfPanelKernel, FinishedMatricesExit) {
  auto dev = make_dev();
  LuBatch tb({8, 64}, 505);
  GetrfPanelArgs<double> args;
  args.batch = {tb.ptrs.data(), tb.n, tb.lda};
  args.m = tb.n;
  args.offset = 32;  // matrix 0 (n=8) has no rows left
  args.NB = 16;
  args.ipiv = tb.piv_ptrs.data();
  args.info = tb.info;
  launch_getrf_panel(dev, args);
  EXPECT_EQ(dev.timeline().records().back().early_exits, 1);
}

// ---------------------------------------------------------------------------
// laswp
// ---------------------------------------------------------------------------

TEST(LaswpKernel, AppliesPivotsToColumnRange) {
  auto dev = make_dev();
  LuBatch tb({10}, 507);
  auto orig = tb.data[0];
  // Pivots: swap row 0<->3 and row 1<->4 (1-based entries 4 and 5).
  tb.piv[0][0] = 4;
  tb.piv[0][1] = 5;

  LaswpArgs<double> args;
  args.batch = {tb.ptrs.data(), tb.n, tb.lda};
  args.m = tb.n;
  args.k1 = 0;
  args.k2 = 2;
  args.col0 = 2;
  args.col1 = 10;
  args.max_cols = 8;
  args.ipiv = tb.piv_ptrs.data();
  launch_laswp(dev, args);

  for (int c = 0; c < 10; ++c) {
    for (int r = 0; r < 10; ++r) {
      int src_row = r;
      if (c >= 2) {  // swapped range only
        if (r == 0) src_row = 3;
        else if (r == 3) src_row = 0;
        else if (r == 1) src_row = 4;
        else if (r == 4) src_row = 1;
      }
      EXPECT_DOUBLE_EQ(tb.data[0][static_cast<std::size_t>(r + c * 10)],
                       orig[static_cast<std::size_t>(src_row + c * 10)])
          << r << "," << c;
    }
  }
}

// ---------------------------------------------------------------------------
// LU unit-lower trsm
// ---------------------------------------------------------------------------

TEST(LuTrsmKernel, SolvesUnitLowerBlockRow) {
  auto dev = make_dev();
  Rng rng(509);
  const int ib = 16, n2 = 40;
  std::vector<double> l11(static_cast<std::size_t>(ib * ib));
  fill_general(rng, l11.data(), ib, ib, ib);
  std::vector<double> b(static_cast<std::size_t>(ib * n2));
  fill_general(rng, b.data(), ib, n2, ib);
  auto bref = b;

  std::vector<double*> lp{l11.data()}, bp{b.data()};
  std::vector<int> lda{ib}, ldb{ib}, ibs{ib}, n2s{n2};
  LuTrsmArgs<double> args;
  args.l11 = lp.data();
  args.lda = lda;
  args.ib = ibs;
  args.b = bp.data();
  args.ldb = ldb;
  args.n2 = n2s;
  args.max_ib = ib;
  args.max_n2 = n2;
  launch_lu_trsm(dev, args);

  MatrixView<double> expect(bref.data(), ib, n2, ib);
  blas::trsm<double>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, 1.0,
                     ConstMatrixView<double>(l11.data(), ib, ib, ib), expect);
  for (int c = 0; c < n2; ++c)
    for (int r = 0; r < ib; ++r)
      EXPECT_NEAR(b[static_cast<std::size_t>(r + c * ib)], expect(r, c), 1e-12);
}

// ---------------------------------------------------------------------------
// QR panel + reflector update
// ---------------------------------------------------------------------------

TEST(GeqrfPanelKernel, MatchesReferenceGeqr2) {
  auto dev = make_dev();
  Rng rng(511);
  const int m = 30, nb = 8;
  std::vector<double> a(static_cast<std::size_t>(m * m));
  fill_general(rng, a.data(), m, m, m);
  auto ref = a;
  std::vector<double> tau(static_cast<std::size_t>(m), 0.0);

  std::vector<double*> ap{a.data()};
  std::vector<double*> tp{tau.data()};
  std::vector<int> lda{m}, mm{m}, nn{m};
  GeqrfPanelArgs<double> args;
  args.a = ap.data();
  args.lda = lda;
  args.m = mm;
  args.n = nn;
  args.offset = 0;
  args.NB = nb;
  args.tau = tp.data();
  launch_geqrf_panel(dev, args);

  MatrixView<double> panel(ref.data(), m, nb, m);
  std::vector<double> rtau(static_cast<std::size_t>(nb));
  blas::geqr2<double>(panel, rtau);
  for (int c = 0; c < nb; ++c) {
    EXPECT_NEAR(tau[static_cast<std::size_t>(c)], rtau[static_cast<std::size_t>(c)], 1e-13);
    for (int r = 0; r < m; ++r)
      EXPECT_NEAR(a[static_cast<std::size_t>(r + c * m)], panel(r, c), 1e-12);
  }
}

TEST(LarfbUpdateKernel, PreservesColumnNorms) {
  // Applying Qᵀ (orthogonal) to the trailing columns preserves their norms.
  auto dev = make_dev();
  Rng rng(513);
  const int m = 25, n = 20, nb = 8;
  std::vector<double> a(static_cast<std::size_t>(m * n));
  fill_general(rng, a.data(), m, n, m);
  std::vector<double> norms_before;
  for (int c = nb; c < n; ++c) {
    double s = 0.0;
    for (int r = 0; r < m; ++r) s += a[static_cast<std::size_t>(r + c * m)] *
                                     a[static_cast<std::size_t>(r + c * m)];
    norms_before.push_back(std::sqrt(s));
  }
  std::vector<double> tau(static_cast<std::size_t>(n), 0.0);
  std::vector<double*> ap{a.data()};
  std::vector<double*> tp{tau.data()};
  std::vector<int> lda{m}, mm{m}, nn{n};

  GeqrfPanelArgs<double> panel;
  panel.a = ap.data();
  panel.lda = lda;
  panel.m = mm;
  panel.n = nn;
  panel.offset = 0;
  panel.NB = nb;
  panel.tau = tp.data();
  launch_geqrf_panel(dev, panel);

  LarfbArgs<double> update;
  update.a = ap.data();
  update.lda = lda;
  update.m = mm;
  update.n = nn;
  update.offset = 0;
  update.NB = nb;
  update.max_m = m;
  update.max_n = n - nb;
  update.tau = tp.data();
  launch_larfb_update(dev, update);

  for (int c = nb; c < n; ++c) {
    double s = 0.0;
    for (int r = 0; r < m; ++r) s += a[static_cast<std::size_t>(r + c * m)] *
                                     a[static_cast<std::size_t>(r + c * m)];
    EXPECT_NEAR(std::sqrt(s), norms_before[static_cast<std::size_t>(c - nb)], 1e-10);
  }
}

}  // namespace
