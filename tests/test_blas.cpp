// Correctness tests for the reference BLAS layer, checked against naive
// triple-loop oracles over randomized inputs, parameterized over shapes and
// transposition/side/uplo/diag combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/util/error.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;

template <typename T>
std::vector<T> random_matrix(Rng& rng, index_t m, index_t n, index_t ld) {
  std::vector<T> a(static_cast<std::size_t>(ld * n));
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      a[static_cast<std::size_t>(i + j * ld)] = static_cast<T>(rng.uniform(-1.0, 1.0));
  return a;
}

// Naive oracle: C = alpha op(A) op(B) + beta C.
template <typename T>
void naive_gemm(Trans ta, Trans tb, T alpha, ConstMatrixView<T> a, ConstMatrixView<T> b, T beta,
                MatrixView<T> c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = ta == Trans::NoTrans ? a.cols() : a.rows();
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double sum = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = ta == Trans::NoTrans ? a(i, l) : a(l, i);
        const double bv = tb == Trans::NoTrans ? b(l, j) : b(j, l);
        sum += av * bv;
      }
      c(i, j) = static_cast<T>(alpha * sum + beta * c(i, j));
    }
}

double max_diff(ConstMatrixView<double> a, ConstMatrixView<double> b) {
  double d = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

// ---------------------------------------------------------------------------
// GEMM, parameterized over shapes and transposes.
// ---------------------------------------------------------------------------

using GemmParam = std::tuple<int, int, int, Trans, Trans>;

class GemmTest : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 73856093 ^ n * 19349663 ^ k * 83492791));
  const index_t lda = (ta == Trans::NoTrans ? m : k) + 3;
  const index_t ldb = (tb == Trans::NoTrans ? k : n) + 1;
  const index_t ldc = m + 2;
  auto abuf = random_matrix<double>(rng, ta == Trans::NoTrans ? m : k,
                                    ta == Trans::NoTrans ? k : m, lda);
  auto bbuf = random_matrix<double>(rng, tb == Trans::NoTrans ? k : n,
                                    tb == Trans::NoTrans ? n : k, ldb);
  auto cbuf = random_matrix<double>(rng, m, n, ldc);
  auto cref = cbuf;

  ConstMatrixView<double> a(abuf.data(), ta == Trans::NoTrans ? m : k,
                            ta == Trans::NoTrans ? k : m, lda);
  ConstMatrixView<double> b(bbuf.data(), tb == Trans::NoTrans ? k : n,
                            tb == Trans::NoTrans ? n : k, ldb);
  MatrixView<double> c(cbuf.data(), m, n, ldc);
  MatrixView<double> cr(cref.data(), m, n, ldc);

  blas::gemm<double>(ta, tb, 1.3, a, b, -0.7, c);
  naive_gemm<double>(ta, tb, 1.3, a, b, -0.7, cr);
  EXPECT_LT(max_diff(c, cr), 1e-12 * std::max(1, k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Combine(::testing::Values(1, 3, 8, 17), ::testing::Values(1, 5, 16),
                       ::testing::Values(1, 4, 13), ::testing::Values(Trans::NoTrans, Trans::Trans),
                       ::testing::Values(Trans::NoTrans, Trans::Trans)));

TEST(Gemm, ZeroAlphaScalesCByBeta) {
  Rng rng(5);
  auto cbuf = random_matrix<double>(rng, 4, 4, 4);
  auto orig = cbuf;
  auto abuf = random_matrix<double>(rng, 4, 4, 4);
  MatrixView<double> c(cbuf.data(), 4, 4, 4);
  ConstMatrixView<double> a(abuf.data(), 4, 4, 4);
  blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 0.0, a, a, 2.0, c);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(c(i, j), 2.0 * orig[static_cast<std::size_t>(i + j * 4)]);
}

TEST(Gemm, EmptyDimensionsAreNoops) {
  std::vector<double> buf(4, 1.0);
  MatrixView<double> c(buf.data(), 2, 2, 2);
  ConstMatrixView<double> a(buf.data(), 2, 0, 2);
  ConstMatrixView<double> b(buf.data(), 0, 2, 2);  // k == 0
  blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 1.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
}

TEST(Gemm, NanInAPropagatesThroughZeroInB) {
  // Regression: the NN fast path used to skip the inner update when
  // b(l, j) == 0, which silently dropped 0 × NaN (and 0 × Inf) products.
  // IEEE semantics require NaN to reach C on every dispatch path.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (blas::micro::Dispatch d :
       {blas::micro::Dispatch::ForceRef, blas::micro::Dispatch::ForceBlocked}) {
    blas::micro::DispatchGuard guard(d);
    std::vector<double> abuf(16, 1.0), bbuf(16, 0.0), cbuf(16, 0.5);
    abuf[0] = nan;  // a(0, 0)
    ConstMatrixView<double> a(abuf.data(), 4, 4, 4);
    ConstMatrixView<double> b(bbuf.data(), 4, 4, 4);
    MatrixView<double> c(cbuf.data(), 4, 4, 4);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 1.0, c);
    for (index_t j = 0; j < 4; ++j) EXPECT_TRUE(std::isnan(c(0, j))) << "col " << j;
  }
}

TEST(Gemm, DimensionMismatchThrows) {
  std::vector<double> buf(20, 0.0);
  ConstMatrixView<double> a(buf.data(), 3, 2, 3);
  ConstMatrixView<double> b(buf.data(), 3, 2, 3);  // inner dims disagree
  MatrixView<double> c(buf.data(), 3, 2, 3);
  EXPECT_THROW(blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c),
               vbatch::Error);
}

// ---------------------------------------------------------------------------
// SYRK: only the requested triangle changes, and it matches gemm(A, Aᵀ).
// ---------------------------------------------------------------------------

using SyrkParam = std::tuple<int, int, Uplo, Trans>;

class SyrkTest : public ::testing::TestWithParam<SyrkParam> {};

TEST_P(SyrkTest, MatchesGemmOnTriangle) {
  const auto [n, k, uplo, trans] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + k));
  const index_t ar = trans == Trans::NoTrans ? n : k;
  const index_t ac = trans == Trans::NoTrans ? k : n;
  auto abuf = random_matrix<double>(rng, ar, ac, ar);
  auto cbuf = random_matrix<double>(rng, n, n, n);
  auto cref = cbuf;
  const auto corig = cbuf;

  ConstMatrixView<double> a(abuf.data(), ar, ac, ar);
  MatrixView<double> c(cbuf.data(), n, n, n);
  MatrixView<double> cr(cref.data(), n, n, n);
  ConstMatrixView<double> co(corig.data(), n, n, n);

  blas::syrk<double>(uplo, trans, -1.0, a, 0.5, c);
  naive_gemm<double>(trans, trans == Trans::NoTrans ? Trans::Trans : Trans::NoTrans, -1.0, a, a,
                     0.5, cr);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (in_tri) {
        EXPECT_NEAR(c(i, j), cr(i, j), 1e-12 * k) << i << "," << j;
      } else {
        EXPECT_DOUBLE_EQ(c(i, j), co(i, j)) << "off-triangle touched";
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyrkTest,
                         ::testing::Combine(::testing::Values(1, 4, 9, 16),
                                            ::testing::Values(1, 3, 8),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper),
                                            ::testing::Values(Trans::NoTrans, Trans::Trans)));

// ---------------------------------------------------------------------------
// TRSM / TRMM: solve-then-multiply round trips for all 16 combinations.
// ---------------------------------------------------------------------------

using TriParam = std::tuple<Side, Uplo, Trans, Diag>;

class TrsmTest : public ::testing::TestWithParam<TriParam> {};

TEST_P(TrsmTest, SolveThenMultiplyRoundTrips) {
  const auto [side, uplo, trans, diag] = GetParam();
  const index_t m = 9, n = 6;
  const index_t ka = side == Side::Left ? m : n;
  Rng rng(99);
  auto abuf = random_matrix<double>(rng, ka, ka, ka);
  // Make the triangle well conditioned.
  MatrixView<double> a(abuf.data(), ka, ka, ka);
  for (index_t i = 0; i < ka; ++i) a(i, i) = 4.0 + i;
  auto bbuf = random_matrix<double>(rng, m, n, m);
  auto borig = bbuf;
  MatrixView<double> b(bbuf.data(), m, n, m);

  blas::trsm<double>(side, uplo, trans, diag, 2.0, a, b);
  blas::trmm<double>(side, uplo, trans, diag, 0.5, a, b);
  MatrixView<double> bo(borig.data(), m, n, m);
  EXPECT_LT(max_diff(b, bo), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TrsmTest,
                         ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper),
                                            ::testing::Values(Trans::NoTrans, Trans::Trans),
                                            ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Trsm, LowerLeftSolvesKnownSystem) {
  // L = [[2,0],[1,3]], B = L * X with X = [[1],[2]] → B = [[2],[7]].
  std::vector<double> l{2, 1, 0, 3};
  std::vector<double> b{2, 7};
  ConstMatrixView<double> lv(l.data(), 2, 2, 2);
  MatrixView<double> bv(b.data(), 2, 1, 2);
  blas::trsm<double>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, lv, bv);
  EXPECT_NEAR(bv(0, 0), 1.0, 1e-15);
  EXPECT_NEAR(bv(1, 0), 2.0, 1e-15);
}

// ---------------------------------------------------------------------------
// TRTRI: A * inv(A) == I on the triangle.
// ---------------------------------------------------------------------------

class TrtriTest : public ::testing::TestWithParam<std::tuple<int, Uplo, Diag>> {};

TEST_P(TrtriTest, InverseMultipliesToIdentity) {
  const auto [n, uplo, diag] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 7 + static_cast<int>(uplo)));
  auto abuf = random_matrix<double>(rng, n, n, n);
  MatrixView<double> a(abuf.data(), n, n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 3.0 + i;
  // Zero the opposite triangle so products are clean.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
      if (!in_tri) a(i, j) = 0.0;
    }
  auto inv = abuf;
  MatrixView<double> iv(inv.data(), n, n, n);
  ASSERT_EQ(blas::trtri<double>(uplo, diag, iv), 0);

  // P = A_eff * inv_eff must be the identity, where _eff applies Diag::Unit.
  std::vector<double> p(static_cast<std::size_t>(n * n), 0.0);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (index_t k = 0; k < n; ++k) {
        double av = a(i, k), bv = iv(k, j);
        if (diag == Diag::Unit) {
          if (i == k) av = 1.0;
          if (k == j) bv = 1.0;
        }
        sum += av * bv;
      }
      p[static_cast<std::size_t>(i + j * n)] = sum;
    }
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(p[static_cast<std::size_t>(i + j * n)], i == j ? 1.0 : 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrtriTest,
                         ::testing::Combine(::testing::Values(1, 2, 5, 12, 32),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper),
                                            ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(Trtri, SingularDiagonalReportsIndex) {
  std::vector<double> a{1, 2, 0, 0};  // A(1,1) == 0
  MatrixView<double> av(a.data(), 2, 2, 2);
  EXPECT_EQ(blas::trtri<double>(Uplo::Lower, Diag::NonUnit, av), 2);
}

TEST(Norms, FrobeniusAndMax) {
  std::vector<double> a{3, 0, 0, 4};
  ConstMatrixView<double> av(a.data(), 2, 2, 2);
  EXPECT_DOUBLE_EQ(blas::norm_fro(av), 5.0);
  EXPECT_DOUBLE_EQ(blas::norm_max(av), 4.0);
}

}  // namespace
