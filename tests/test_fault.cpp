// vbatch::fault — deterministic fault injection and the self-healing
// heterogeneous runtime.
//
// The load-bearing guarantee under test: for every (pool, seed, fault spec)
// with at least one surviving executor, the recovered run produces factors
// and info BIT-IDENTICAL to the fault-free single-device run — numerics
// only ever execute on the one successful attempt of each chunk. On top of
// that: the spec grammar rejects malformed input, the injection oracle is a
// pure function (same spec ⇒ same fault sequence ⇒ same recovery schedule),
// degradation goes all the way down to CPU-only, total loss poisons info
// with kInfoChunkLost instead of throwing, and the wasted intervals are
// visible in the device timelines and the profiler.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/fault/fault_plan.hpp"
#include "vbatch/hetero/potrf_hetero.hpp"
#include "vbatch/sim/profile.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;
using namespace vbatch::hetero;

template <typename T>
std::vector<std::vector<T>> snapshot(Batch<T>& batch) {
  std::vector<std::vector<T>> out;
  out.reserve(static_cast<std::size_t>(batch.count()));
  for (int i = 0; i < batch.count(); ++i) out.push_back(batch.copy_matrix(i));
  return out;
}

template <typename T>
void expect_bit_identical(const std::vector<std::vector<T>>& a,
                          const std::vector<std::vector<T>>& b, const std::string& what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(0, std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(T)))
        << what << ": matrix " << i << " differs";
  }
}

std::vector<int> test_sizes(int count, int nmax, std::uint64_t seed = 33) {
  Rng rng(seed);
  return gaussian_sizes(rng, count, nmax);
}

struct Baseline {
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
};

Baseline single_device_baseline(const std::vector<int>& sizes) {
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  (void)potrf_vbatched<double>(q, Uplo::Lower, batch);
  Baseline b;
  b.factors = snapshot(batch);
  b.info.assign(batch.info().begin(), batch.info().end());
  return b;
}

struct FaultedRun {
  std::vector<std::vector<double>> factors;
  std::vector<int> info;
  HeteroResult result;
};

FaultedRun hetero_faulted(const std::vector<int>& sizes, const std::string& pool_desc,
                          const std::string& fault_spec) {
  DevicePool pool = DevicePool::parse(pool_desc);
  if (!fault_spec.empty()) pool.set_faults(fault::parse_fault_spec(fault_spec));
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  FaultedRun r;
  r.result = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  r.factors = snapshot(batch);
  r.info.assign(batch.info().begin(), batch.info().end());
  return r;
}

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesTheFullGrammar) {
  const auto spec = fault::parse_fault_spec(
      "seed=7;transient:rate=0.25;transient:exec=1,chunk=3,times=2;"
      "hang:exec=0,chunk=-1;die:exec=2,after=4");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.transient_rate, 0.25);
  ASSERT_EQ(spec.transients.size(), 1u);
  EXPECT_EQ(spec.transients[0].exec, 1);
  EXPECT_EQ(spec.transients[0].chunk, 3);
  EXPECT_EQ(spec.transients[0].times, 2);
  ASSERT_EQ(spec.hangs.size(), 1u);
  EXPECT_EQ(spec.hangs[0].exec, 0);
  EXPECT_EQ(spec.hangs[0].chunk, -1);
  ASSERT_EQ(spec.deaths.size(), 1u);
  EXPECT_EQ(spec.deaths[0].exec, 2);
  EXPECT_EQ(spec.deaths[0].after, 4);
  EXPECT_FALSE(spec.empty());
}

TEST(FaultSpec, DefaultsAndEmpty) {
  EXPECT_TRUE(fault::parse_fault_spec("").empty());
  // A targeted transient defaults to times=1, any exec, any chunk.
  const auto spec = fault::parse_fault_spec("transient:times=1");
  ASSERT_EQ(spec.transients.size(), 1u);
  EXPECT_EQ(spec.transients[0].exec, -1);
  EXPECT_EQ(spec.transients[0].chunk, -1);
  EXPECT_EQ(spec.transients[0].times, 1);
}

TEST(FaultSpec, DescribeRoundTrips) {
  const std::string canonical =
      fault::parse_fault_spec("seed=9;transient:rate=0.1;die:exec=1,after=0").describe();
  EXPECT_EQ(fault::parse_fault_spec(canonical).describe(), canonical);
}

TEST(FaultSpec, RejectsMalformedInput) {
  const char* bad[] = {
      "transient:rate=1.5",          // rate out of [0, 1]
      "transient:rate=-0.1",         //
      "transient:rate=abc",          // not a number
      "transient:rate=0.2,exec=1",   // rate and targeting are exclusive
      "transient:exec=0,times=0",    // times must be >= 1
      "transient:bogus=1",           // unknown key
      "hang:after=2",                // unknown key for hang
      "die:after=2",                 // die needs an executor
      "die:exec=1,chunk=0",          // unknown key for die
      "explode:exec=1",              // unknown fault head
      "seed=abc",                    // not a number
      "seed=",                       //
      ";",                           // stray separator
      "transient:rate=0.2;;seed=1",  // empty clause
      "transient:",                  // empty rule body
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)fault::parse_fault_spec(spec), Error) << "accepted: " << spec;
  }
}

// ---------------------------------------------------------------------------
// The injection oracle is a pure function
// ---------------------------------------------------------------------------

TEST(FaultPlan, OutcomeIsPureAndSeedDependent) {
  const fault::FaultPlan a(fault::parse_fault_spec("seed=5;transient:rate=0.3"));
  const fault::FaultPlan b(fault::parse_fault_spec("seed=5;transient:rate=0.3"));
  const fault::FaultPlan c(fault::parse_fault_spec("seed=6;transient:rate=0.3"));
  int fired = 0, differs = 0;
  for (int e = 0; e < 4; ++e)
    for (int ch = 0; ch < 16; ++ch)
      for (int at = 1; at <= 3; ++at) {
        EXPECT_EQ(a.attempt_outcome(e, ch, at), b.attempt_outcome(e, ch, at));
        if (a.attempt_outcome(e, ch, at) != fault::FaultKind::None) ++fired;
        if (a.attempt_outcome(e, ch, at) != c.attempt_outcome(e, ch, at)) ++differs;
      }
  EXPECT_GT(fired, 0);    // rate 0.3 over 192 attempts must fire
  EXPECT_GT(differs, 0);  // and a different seed must reshuffle
}

TEST(FaultPlan, TargetedRulesAndPrecedence) {
  const fault::FaultPlan plan(fault::parse_fault_spec(
      "transient:exec=0,chunk=2,times=2;hang:exec=0,chunk=2;die:exec=1,after=3"));
  // Hang wins over the matching transient on the same (exec, chunk).
  EXPECT_EQ(plan.attempt_outcome(0, 2, 1), fault::FaultKind::Hang);
  EXPECT_EQ(plan.attempt_outcome(0, 3, 1), fault::FaultKind::None);
  EXPECT_EQ(plan.attempt_outcome(1, 2, 1), fault::FaultKind::None);
  EXPECT_EQ(plan.dies_after(1), 3);
  EXPECT_EQ(plan.dies_after(0), -1);
}

TEST(FaultPlan, TransientTimesBoundsTheAttempts) {
  const fault::FaultPlan plan(fault::parse_fault_spec("transient:exec=1,chunk=0,times=2"));
  EXPECT_EQ(plan.attempt_outcome(1, 0, 1), fault::FaultKind::Transient);
  EXPECT_EQ(plan.attempt_outcome(1, 0, 2), fault::FaultKind::Transient);
  EXPECT_EQ(plan.attempt_outcome(1, 0, 3), fault::FaultKind::None);
}

// ---------------------------------------------------------------------------
// Scheduler recovery loop (unit level)
// ---------------------------------------------------------------------------

ScheduleParams two_exec_params(int chunks) {
  ScheduleParams sp;
  sp.executors = 2;
  for (int c = 0; c < chunks; ++c) sp.owner.push_back(c % 2);
  sp.estimate.assign(2, std::vector<double>(static_cast<std::size_t>(chunks), 1.0));
  return sp;
}

TEST(FaultScheduler, TransientRetriesThenSucceeds) {
  ScheduleParams sp;
  sp.executors = 1;
  sp.owner = {0};
  sp.estimate = {{1.0}};
  const fault::FaultPlan plan(fault::parse_fault_spec("transient:exec=0,chunk=0,times=2"));
  sp.faults = &plan;
  int executions = 0;
  const auto res = run_schedule(sp, [&](int, int) {
    ++executions;
    return 1.0;
  });
  EXPECT_EQ(executions, 1);  // numerics ran exactly once
  EXPECT_EQ(res.attempts[0], 3);
  EXPECT_EQ(res.retries_total, 2);
  EXPECT_EQ(res.executed_by[0], 0);
  EXPECT_EQ(res.chunks_poisoned, 0);
  // Two wasted attempts + the success, plus backoff 50us + 100us.
  const double backoff = sp.retry.backoff_seconds * (1.0 + sp.retry.backoff_multiplier);
  EXPECT_DOUBLE_EQ(res.busy[0], 3.0);
  EXPECT_DOUBLE_EQ(res.backoff_seconds, backoff);
  EXPECT_DOUBLE_EQ(res.makespan, 3.0 + backoff);
  ASSERT_EQ(res.events.size(), 2u);
  EXPECT_EQ(res.events[0].kind, fault::FaultKind::Transient);
  EXPECT_EQ(res.events[1].attempt, 2);
}

TEST(FaultScheduler, ExhaustedRetriesRedispatchToPeer) {
  auto sp = two_exec_params(2);
  // Executor 0 can never run chunk 0; after max_attempts it must hand the
  // chunk to executor 1, which runs it cleanly. Stealing is off so the
  // hand-over goes through retry exhaustion, not an opportunistic steal.
  sp.work_stealing = false;
  const fault::FaultPlan plan(fault::parse_fault_spec("transient:exec=0,chunk=0,times=99"));
  sp.faults = &plan;
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_EQ(res.executed_by[0], 1);
  EXPECT_EQ(res.retries[0], sp.retry.max_attempts);
  EXPECT_EQ(res.chunks_poisoned, 0);
  EXPECT_EQ(res.executors_lost, 0);
}

TEST(FaultScheduler, NoSurvivorPoisonsTheChunk) {
  ScheduleParams sp;
  sp.executors = 1;
  sp.owner = {0, 0};
  sp.estimate = {{1.0, 1.0}};
  const fault::FaultPlan plan(fault::parse_fault_spec("transient:exec=0,chunk=1,times=99"));
  sp.faults = &plan;
  int executions = 0;
  const auto res = run_schedule(sp, [&](int, int) {
    ++executions;
    return 1.0;
  });
  EXPECT_EQ(executions, 1);  // chunk 0 only; chunk 1 never commits
  EXPECT_EQ(res.executed_by[0], 0);
  EXPECT_EQ(res.executed_by[1], -1);
  EXPECT_EQ(res.poisoned[1], 1);
  EXPECT_EQ(res.chunks_poisoned, 1);
  EXPECT_EQ(res.events.back().kind, fault::FaultKind::ChunkLost);
  EXPECT_EQ(res.events.back().chunk, 1);
}

TEST(FaultScheduler, DeathOrphansTheDequeOntoSurvivors) {
  auto sp = two_exec_params(6);
  const fault::FaultPlan plan(fault::parse_fault_spec("die:exec=0,after=1"));
  sp.faults = &plan;
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_EQ(res.executors_lost, 1);
  EXPECT_EQ(res.lost[0], 1);
  EXPECT_EQ(res.chunks_run[0], 1);  // completed exactly `after` chunks
  EXPECT_EQ(res.chunks_run[1], 5);  // survivor absorbed the orphans
  EXPECT_EQ(res.chunks_poisoned, 0);
  bool logged_loss = false;
  for (const auto& ev : res.events)
    if (ev.kind == fault::FaultKind::ExecutorLoss && ev.exec == 0) logged_loss = true;
  EXPECT_TRUE(logged_loss);
}

TEST(FaultScheduler, HangConvertsIntoExecutorLoss) {
  auto sp = two_exec_params(4);
  const fault::FaultPlan plan(fault::parse_fault_spec("hang:exec=0,chunk=-1"));
  sp.faults = &plan;
  const auto res = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_EQ(res.hangs, 1);  // the watchdog fires once, then the exec is gone
  EXPECT_EQ(res.executors_lost, 1);
  EXPECT_EQ(res.lost[0], 1);
  EXPECT_EQ(res.chunks_run[0], 0);
  EXPECT_EQ(res.chunks_run[1], 4);
  EXPECT_DOUBLE_EQ(res.busy[0], sp.retry.watchdog_seconds);
  EXPECT_EQ(res.chunks_poisoned, 0);
}

TEST(FaultScheduler, AttachedButSilentPlanChangesNothing) {
  auto sp = two_exec_params(8);
  const auto clean = run_schedule(sp, [&](int, int) { return 1.0; });
  // A plan whose rules target executors that never act must not perturb the
  // schedule — the fault-free overhead contract behind bench/fig_fault_overhead.
  const fault::FaultPlan plan(fault::parse_fault_spec("die:exec=99,after=0;hang:exec=99,chunk=0"));
  sp.faults = &plan;
  const auto silent = run_schedule(sp, [&](int, int) { return 1.0; });
  EXPECT_EQ(silent.makespan, clean.makespan);
  EXPECT_EQ(silent.chunks_run, clean.chunks_run);
  EXPECT_EQ(silent.executed_by, clean.executed_by);
  EXPECT_EQ(silent.retries_total, 0);
  EXPECT_TRUE(silent.events.empty());
}

// ---------------------------------------------------------------------------
// End-to-end: bit-identity under every fault class
// ---------------------------------------------------------------------------

TEST(FaultRecovery, BitIdenticalUnderEveryFaultClass) {
  const auto sizes = test_sizes(96, 260);
  const Baseline base = single_device_baseline(sizes);
  const char* specs[] = {
      "seed=5;transient:rate=0.25",                             // probabilistic storms
      "transient:exec=-1,chunk=-1,times=1",                     // every first attempt fails
      "die:exec=1,after=0",                                     // a GPU dead on arrival
      "hang:exec=2,chunk=-1",                                   // a GPU hangs, watchdog kills it
      "seed=9;transient:rate=0.15;die:exec=2,after=1;hang:exec=1,chunk=3",  // combined
  };
  for (const char* spec : specs) {
    const auto r = hetero_faulted(sizes, "cpu,k40c,p100", spec);
    const std::string what = std::string("spec '") + spec + "'";
    expect_bit_identical(base.factors, r.factors, what);
    for (std::size_t i = 0; i < base.info.size(); ++i)
      EXPECT_EQ(base.info[i], r.info[i]) << what << ": info " << i;
    EXPECT_EQ(r.result.chunks_poisoned, 0) << what;
    EXPECT_GT(static_cast<int>(r.result.fault_events.size()), 0) << what;
  }
}

TEST(FaultRecovery, RetriesAreVisibleInTheResult) {
  const auto sizes = test_sizes(64, 200);
  const auto r = hetero_faulted(sizes, "k40c,p100", "transient:exec=-1,chunk=-1,times=1");
  // Every chunk's first attempt fails, wherever it lands — and a chunk
  // that migrates (steal or re-dispatch) fails once per new executor too,
  // so the pool-wide count is at least one retry per chunk.
  EXPECT_GE(r.result.retries, r.result.chunks);
  EXPECT_GT(r.result.backoff_seconds, 0.0);
  int per_exec = 0;
  for (const auto& ex : r.result.executors) per_exec += ex.retries;
  EXPECT_EQ(per_exec, r.result.retries);
}

TEST(FaultRecovery, DegradesToCpuOnlyWhenEveryGpuDies) {
  const auto sizes = test_sizes(72, 220);
  const Baseline base = single_device_baseline(sizes);
  // Pool order: exec 0 = cpu, 1 = k40c#0, 2 = p100#1. Both GPUs die before
  // completing anything; the CPU must finish the whole batch, bit-identical.
  const auto r = hetero_faulted(sizes, "cpu,k40c,p100", "die:exec=1,after=0;die:exec=2,after=0");
  expect_bit_identical(base.factors, r.factors, "cpu-only degradation");
  for (std::size_t i = 0; i < base.info.size(); ++i) EXPECT_EQ(base.info[i], r.info[i]);
  EXPECT_EQ(r.result.executors_lost, 2);
  EXPECT_EQ(r.result.chunks_poisoned, 0);
  ASSERT_EQ(r.result.executors.size(), 3u);
  EXPECT_FALSE(r.result.executors[0].lost);
  EXPECT_TRUE(r.result.executors[1].lost);
  EXPECT_TRUE(r.result.executors[2].lost);
  int cpu_matrices = r.result.executors[0].matrices;
  EXPECT_EQ(cpu_matrices, static_cast<int>(sizes.size()));
}

TEST(FaultRecovery, TotalLossPoisonsInfoInsteadOfThrowing) {
  const auto sizes = test_sizes(48, 180);
  const Baseline base = single_device_baseline(sizes);
  // Single executor dies after 2 of its 4 chunks: the rest of the batch is
  // unrecoverable and must be reported through info, not an exception.
  FaultedRun r;
  ASSERT_NO_THROW(r = hetero_faulted(sizes, "k40c", "die:exec=0,after=2"));
  EXPECT_EQ(r.result.executors_lost, 1);
  EXPECT_GT(r.result.chunks_poisoned, 0);
  int poisoned = 0;
  for (std::size_t i = 0; i < r.info.size(); ++i) {
    if (r.info[i] == kInfoChunkLost) {
      ++poisoned;
    } else {
      // Every problem a surviving attempt completed is still bit-identical.
      EXPECT_EQ(base.info[i], r.info[i]) << "info " << i;
      EXPECT_EQ(0, std::memcmp(base.factors[i].data(), r.factors[i].data(),
                               base.factors[i].size() * sizeof(double)))
          << "matrix " << i;
    }
  }
  EXPECT_GT(poisoned, 0);
}

TEST(FaultRecovery, NonSpdMatrixInsideRetriedChunkKeepsItsInfo) {
  // Satellite regression: a non-SPD matrix whose chunk is retried must
  // report the same pivot failure as the single-device run — the failed
  // attempt never touches the data, so the retry sees pristine input.
  const auto sizes = test_sizes(60, 200);
  int victim = -1;
  for (std::size_t i = 0; i < sizes.size(); ++i)
    if (sizes[i] >= 4) {
      victim = static_cast<int>(i);
      break;
    }
  ASSERT_GE(victim, 0);

  auto fill_with_victim = [&](Batch<double>& batch) {
    Rng fill(7);
    batch.fill_spd(fill);
    batch.matrix(victim)(2, 2) = -100.0;  // breaks positivity at step 3
  };

  Queue q0;
  Batch<double> b0(q0, sizes);
  fill_with_victim(b0);
  (void)potrf_vbatched<double>(q0, Uplo::Lower, b0);
  ASSERT_EQ(b0.info()[static_cast<std::size_t>(victim)], 3);

  DevicePool pool = DevicePool::parse("cpu,k40c,p100");
  pool.set_faults(fault::parse_fault_spec("transient:exec=-1,chunk=-1,times=1"));
  Queue q1;
  Batch<double> b1(q1, sizes);
  fill_with_victim(b1);
  const auto hr = potrf_vbatched_hetero<double>(pool, Uplo::Lower, b1);
  EXPECT_GT(hr.retries, 0);
  for (std::size_t i = 0; i < sizes.size(); ++i)
    EXPECT_EQ(b0.info()[i], b1.info()[i]) << "info " << i;
  expect_bit_identical(snapshot(b0), snapshot(b1), "non-SPD retry");
}

// ---------------------------------------------------------------------------
// Determinism and observability
// ---------------------------------------------------------------------------

TEST(FaultRecovery, SameSeedAndSpecReplayIdentically) {
  const auto sizes = test_sizes(80, 240);
  const char* spec = "seed=11;transient:rate=0.2;die:exec=2,after=2";
  const auto a = hetero_faulted(sizes, "cpu,k40c,p100", spec);
  const auto b = hetero_faulted(sizes, "cpu,k40c,p100", spec);
  EXPECT_EQ(a.result.seconds, b.result.seconds);  // bitwise: modelled time replays
  EXPECT_EQ(a.result.retries, b.result.retries);
  EXPECT_EQ(a.result.backoff_seconds, b.result.backoff_seconds);
  EXPECT_EQ(a.result.steals, b.result.steals);
  ASSERT_EQ(a.result.fault_events.size(), b.result.fault_events.size());
  for (std::size_t i = 0; i < a.result.fault_events.size(); ++i) {
    const auto& ea = a.result.fault_events[i];
    const auto& eb = b.result.fault_events[i];
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.exec, eb.exec) << "event " << i;
    EXPECT_EQ(ea.chunk, eb.chunk) << "event " << i;
    EXPECT_EQ(ea.attempt, eb.attempt) << "event " << i;
    EXPECT_EQ(ea.start, eb.start) << "event " << i;
  }
  expect_bit_identical(a.factors, b.factors, "replay");
}

TEST(FaultRecovery, WastedIntervalsReachTimelineAndProfiler) {
  const auto sizes = test_sizes(64, 220);
  DevicePool pool = DevicePool::parse("k40c,p100");
  pool.set_faults(fault::parse_fault_spec("transient:exec=-1,chunk=-1,times=1"));
  Queue q;
  Batch<double> batch(q, sizes);
  Rng fill(7);
  batch.fill_spd(fill);
  const auto hr = potrf_vbatched_hetero<double>(pool, Uplo::Lower, batch);
  EXPECT_GT(hr.retries, 0);
  std::size_t fault_records = 0;
  double fault_seconds = 0.0;
  int profiled_faults = 0;
  for (int e = 0; e < pool.size(); ++e) {
    const auto& tl = pool.executor(e).queue().device().timeline();
    fault_records += tl.fault_count();
    fault_seconds += tl.fault_seconds();
    for (const auto& p : sim::profile_timeline(tl)) profiled_faults += p.faults;
  }
  EXPECT_GT(fault_records, 0u);
  EXPECT_GT(fault_seconds, 0.0);
  EXPECT_EQ(static_cast<std::size_t>(profiled_faults), fault_records);
}

TEST(FaultRecovery, EnvironmentKnobInjectsWhenPoolHasNoSpec) {
  const auto sizes = test_sizes(40, 160);
  ASSERT_EQ(::setenv("VBATCH_INJECT_FAULTS", "transient:exec=-1,chunk=-1,times=1", 1), 0);
  const auto injected = hetero_faulted(sizes, "k40c,p100", "");
  EXPECT_GT(injected.result.retries, 0);
  // An explicit (never-firing) pool spec takes precedence over the knob.
  const auto pinned = hetero_faulted(sizes, "k40c,p100", "die:exec=99,after=999");
  EXPECT_EQ(pinned.result.retries, 0);
  ASSERT_EQ(::unsetenv("VBATCH_INJECT_FAULTS"), 0);
  const auto clean = hetero_faulted(sizes, "k40c,p100", "");
  EXPECT_EQ(clean.result.retries, 0);
  expect_bit_identical(clean.factors, injected.factors, "env knob");
}

}  // namespace
