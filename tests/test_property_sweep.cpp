// Randomized property sweeps: for a grid of seeds, draw a random workload
// (distribution, batch count, size range, lda padding) and random solver
// options, run the full vbatched pipeline, and check the invariants that
// must hold for ANY configuration:
//   * every info code is zero for SPD inputs;
//   * every factor reproduces its matrix (residual below tolerance);
//   * factor-then-solve returns the original solution;
//   * the modelled time is positive and finite, and the device clock
//     advanced by exactly the run's duration;
//   * TimingOnly mode reports the same modelled seconds as Full mode.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/geqrf_vbatched.hpp"
#include "vbatch/core/getrf_vbatched.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"

namespace {

using namespace vbatch;

struct RandomConfig {
  std::vector<int> sizes;
  int lda_pad;
  PotrfOptions opts;
  Uplo uplo;
};

RandomConfig draw_config(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  RandomConfig cfg;
  const auto dist = rng.uniform() < 0.5 ? SizeDist::Uniform : SizeDist::Gaussian;
  const int batch = static_cast<int>(rng.uniform_int(5, 60));
  const int nmax = static_cast<int>(rng.uniform_int(4, 110));
  cfg.sizes = make_sizes(dist, rng, batch, nmax);
  cfg.lda_pad = static_cast<int>(rng.uniform_int(0, 5));
  cfg.opts.path = rng.uniform() < 0.5 ? PotrfPath::Fused : PotrfPath::Separated;
  cfg.opts.etm = rng.uniform() < 0.5 ? EtmMode::Classic : EtmMode::Aggressive;
  cfg.opts.implicit_sorting = rng.uniform() < 0.5;
  cfg.opts.streamed_syrk = rng.uniform() < 0.3;
  cfg.uplo = rng.uniform() < 0.5 ? Uplo::Lower : Uplo::Upper;
  return cfg;
}

class PotrfPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PotrfPropertyTest, RandomWorkloadSatisfiesAllInvariants) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const RandomConfig cfg = draw_config(seed);

  Queue q;
  Batch<double> batch(q, cfg.sizes, cfg.lda_pad);
  Rng fill(seed + 99);
  batch.fill_spd(fill);
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  const double clock_before = q.time();
  const auto r = potrf_vbatched<double>(q, cfg.uplo, batch, cfg.opts);

  // Timing invariants.
  ASSERT_TRUE(std::isfinite(r.seconds));
  ASSERT_GT(r.seconds, 0.0);
  EXPECT_NEAR(q.time() - clock_before, r.seconds, r.seconds * 1e-12);
  EXPECT_DOUBLE_EQ(r.flops, batch.potrf_flops());

  // Numerical invariants.
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0)
        << "seed " << seed << " matrix " << i;
    const int n = cfg.sizes[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<double>(cfg.uplo, orig, batch.matrix(i)), 1e-12)
        << "seed " << seed << " matrix " << i;
  }

  // Factor-then-solve round trip on a random rhs.
  std::vector<int> nrhs(cfg.sizes.size(), 2);
  RectBatch<double> b(q, cfg.sizes, nrhs);
  std::vector<std::vector<double>> x_true;
  for (int i = 0; i < batch.count(); ++i) {
    const int n = cfg.sizes[static_cast<std::size_t>(i)];
    std::vector<double> x(static_cast<std::size_t>(n) * 2);
    for (auto& v : x) v = fill.uniform(-1.0, 1.0);
    if (n > 0) {
      ConstMatrixView<double> av(originals[static_cast<std::size_t>(i)].data(), n, n, n);
      ConstMatrixView<double> xv(x.data(), n, 2, n);
      blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, xv, 0.0, b.matrix(i));
    }
    x_true.push_back(std::move(x));
  }
  potrs_vbatched<double>(q, cfg.uplo, batch, b);
  for (int i = 0; i < batch.count(); ++i) {
    const int n = cfg.sizes[static_cast<std::size_t>(i)];
    auto x = b.matrix(i);
    for (int c = 0; c < 2; ++c)
      for (int row = 0; row < n; ++row)
        EXPECT_NEAR(x(row, c),
                    x_true[static_cast<std::size_t>(i)][static_cast<std::size_t>(row + c * n)],
                    1e-7)
            << "seed " << seed;
  }

  // Timing-only agreement: the cost model must not depend on the data.
  Queue qt(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> bt(qt, cfg.sizes, cfg.lda_pad);
  const auto rt = potrf_vbatched<double>(qt, cfg.uplo, bt, cfg.opts);
  EXPECT_NEAR(rt.seconds, r.seconds, r.seconds * 1e-9) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PotrfPropertyTest, ::testing::Range(1, 13));

class LuQrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuQrPropertyTest, RandomLuAndQrBatchesFactorCorrectly) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 40503u + 7);
  const int batch = static_cast<int>(rng.uniform_int(4, 25));
  const int nmax = static_cast<int>(rng.uniform_int(6, 80));

  // LU on square matrices.
  {
    auto sizes = uniform_sizes(rng, batch, nmax);
    Queue q;
    Batch<double> a(q, sizes);
    for (int i = 0; i < a.count(); ++i) {
      const int n = sizes[static_cast<std::size_t>(i)];
      fill_general(rng, a.matrix(i).data(), n, n, a.ldas()[static_cast<std::size_t>(i)]);
    }
    std::vector<std::vector<double>> originals;
    for (int i = 0; i < a.count(); ++i) originals.push_back(a.copy_matrix(i));
    PivotArrays ipiv(q, sizes);
    getrf_vbatched<double>(q, a, ipiv);
    for (int i = 0; i < a.count(); ++i) {
      if (a.info()[static_cast<std::size_t>(i)] != 0) continue;  // exact singularity is legal
      const int n = sizes[static_cast<std::size_t>(i)];
      ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
      EXPECT_LT(blas::getrf_residual<double>(orig, a.matrix(i), ipiv.pivots(i)), 1e-11)
          << "seed " << seed;
    }
  }

  // QR on tall matrices.
  {
    auto cols = uniform_sizes(rng, batch, nmax);
    std::vector<int> rows(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i)
      rows[i] = cols[i] + static_cast<int>(rng.uniform_int(0, 20));
    Queue q;
    RectBatch<double> a(q, rows, cols);
    a.fill_general(rng);
    std::vector<std::vector<double>> originals;
    for (int i = 0; i < a.count(); ++i) originals.push_back(a.copy_matrix(i));
    std::vector<int> mn(cols.size());
    for (std::size_t i = 0; i < cols.size(); ++i) mn[i] = std::min(rows[i], cols[i]);
    TauArrays<double> tau(q, mn);
    geqrf_vbatched<double>(q, a, tau);
    for (int i = 0; i < a.count(); ++i) {
      const int m = rows[static_cast<std::size_t>(i)];
      const int n = cols[static_cast<std::size_t>(i)];
      ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), m, n, m);
      EXPECT_LT(blas::geqrf_residual<double>(orig, a.matrix(i), tau.tau(i)), 1e-11)
          << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuQrPropertyTest, ::testing::Range(1, 9));

}  // namespace
