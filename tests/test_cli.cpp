// Integration test for the vbatch_cli driver binary: spawns the real
// executable (path injected by CMake) and checks exit codes and key output
// lines for the main flag combinations.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#ifndef VBATCH_CLI_PATH
#error "VBATCH_CLI_PATH must be defined by the build"
#endif

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& args) {
  CliRun r;
  const std::string cmd = std::string(VBATCH_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) r.output += buf.data();
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

TEST(Cli, DefaultRunSucceeds) {
  const auto r = run_cli("--batch 50 --nmax 64");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("potrf_vbatched"), std::string::npos);
  EXPECT_NE(r.output.find("Gflop/s"), std::string::npos);
}

TEST(Cli, VerifyModeChecksResiduals) {
  const auto r = run_cli("--batch 30 --nmax 48 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("worst residual"), std::string::npos);
}

TEST(Cli, TuneProfileEnergyFlags) {
  const auto r = run_cli("--batch 40 --nmax 96 --tune --profile --energy");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("autotune:"), std::string::npos);
  EXPECT_NE(r.output.find("kernel profile"), std::string::npos);
  EXPECT_NE(r.output.find("energy to solution"), std::string::npos);
}

TEST(Cli, GaussianSinglePrecisionSeparatedPath) {
  const auto r = run_cli("--batch 60 --nmax 900 --dist gaussian --precision s --path separated");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("path=separated"), std::string::npos);
}

TEST(Cli, BadFlagExitsWithUsage) {
  const auto r = run_cli("--bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Cli, InvalidValueRejected) {
  const auto r = run_cli("--batch 0");
  EXPECT_EQ(r.exit_code, 2);
}

}  // namespace
