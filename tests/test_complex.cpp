// Complex-precision tests (paper §IV-A: "the proposed framework supports
// complex precisions"). The library follows the Hermitian convention for
// complex scalars: Trans::Trans on a complex operand means conjugate
// transpose — the only case the Cholesky/solve family needs.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/core/blas_vbatched.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"

namespace {

using namespace vbatch;
using Z = std::complex<double>;
using C = std::complex<float>;

// ---------------------------------------------------------------------------
// Reference BLAS with complex scalars
// ---------------------------------------------------------------------------

TEST(ComplexBlas, GemmConjTransposeMatchesNaive) {
  Rng rng(301);
  const index_t m = 9, n = 7, k = 5;
  std::vector<Z> a(static_cast<std::size_t>(k * m));  // stored k×m, used as Aᴴ (m×k)
  std::vector<Z> b(static_cast<std::size_t>(k * n));
  std::vector<Z> c(static_cast<std::size_t>(m * n), Z(0));
  fill_general(rng, a.data(), k, m, k);
  fill_general(rng, b.data(), k, n, k);

  ConstMatrixView<Z> av(a.data(), k, m, k);
  ConstMatrixView<Z> bv(b.data(), k, n, k);
  MatrixView<Z> cv(c.data(), m, n, m);
  blas::gemm<Z>(Trans::Trans, Trans::NoTrans, Z(1), av, bv, Z(0), cv);

  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      Z sum(0);
      for (index_t l = 0; l < k; ++l) sum += std::conj(av(l, i)) * bv(l, j);
      EXPECT_NEAR(std::abs(cv(i, j) - sum), 0.0, 1e-13);
    }
}

TEST(ComplexBlas, HerkProducesHermitianResult) {
  Rng rng(303);
  const index_t n = 8, k = 5;
  std::vector<Z> a(static_cast<std::size_t>(n * k));
  fill_general(rng, a.data(), n, k, n);
  std::vector<Z> c(static_cast<std::size_t>(n * n), Z(0));
  MatrixView<Z> cv(c.data(), n, n, n);
  blas::syrk<Z>(Uplo::Lower, Trans::NoTrans, Z(1), ConstMatrixView<Z>(a.data(), n, k, n), Z(0),
                cv);
  // Diagonal must be real and non-negative (Gram matrix).
  for (index_t d = 0; d < n; ++d) {
    EXPECT_NEAR(cv(d, d).imag(), 0.0, 1e-13);
    EXPECT_GE(cv(d, d).real(), 0.0);
  }
  // Lower triangle equals A·Aᴴ.
  ConstMatrixView<Z> av(a.data(), n, k, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = j; i < n; ++i) {
      Z sum(0);
      for (index_t l = 0; l < k; ++l) sum += av(i, l) * std::conj(av(j, l));
      EXPECT_NEAR(std::abs(cv(i, j) - sum), 0.0, 1e-13);
    }
}

TEST(ComplexBlas, HerkDiagonalImagIsExactlyZero) {
  // herk hygiene: the diagonal of A·Aᴴ is accumulated as a real sum, so the
  // imaginary part is exactly 0.0 — not merely small — on every dispatch
  // path and regardless of FP contraction (-march=native FMA included).
  Rng rng(307);
  const index_t n = 70, k = 40;  // large enough to take the blocked path
  for (blas::micro::Dispatch d :
       {blas::micro::Dispatch::ForceRef, blas::micro::Dispatch::ForceBlocked}) {
    blas::micro::DispatchGuard guard(d);
    for (Trans trans : {Trans::NoTrans, Trans::Trans}) {
      const index_t ar = trans == Trans::NoTrans ? n : k;
      const index_t ac = trans == Trans::NoTrans ? k : n;
      std::vector<Z> a(static_cast<std::size_t>(ar * ac));
      fill_general(rng, a.data(), ar, ac, ar);
      std::vector<Z> c(static_cast<std::size_t>(n * n), Z(0.25, 0.0));
      MatrixView<Z> cv(c.data(), n, n, n);
      blas::syrk<Z>(Uplo::Lower, trans, Z(1), ConstMatrixView<Z>(a.data(), ar, ac, ar), Z(0.5),
                    cv);
      for (index_t dd = 0; dd < n; ++dd) EXPECT_EQ(cv(dd, dd).imag(), 0.0) << "diag " << dd;
    }
  }
}

TEST(ComplexBlas, TrsmTrmmRoundTripWithConjugateTranspose) {
  Rng rng(305);
  const index_t m = 10, n = 6;
  std::vector<Z> a(static_cast<std::size_t>(m * m));
  fill_general(rng, a.data(), m, m, m);
  MatrixView<Z> av(a.data(), m, m, m);
  for (index_t d = 0; d < m; ++d) av(d, d) = Z(4.0 + static_cast<double>(d), 0.5);
  std::vector<Z> b(static_cast<std::size_t>(m * n));
  fill_general(rng, b.data(), m, n, m);
  auto borig = b;
  MatrixView<Z> bv(b.data(), m, n, m);

  blas::trsm<Z>(Side::Left, Uplo::Lower, Trans::Trans, Diag::NonUnit, Z(1), av, bv);
  blas::trmm<Z>(Side::Left, Uplo::Lower, Trans::Trans, Diag::NonUnit, Z(1), av, bv);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(std::abs(b[i] - borig[i]), 0.0, 1e-11);
}

TEST(ComplexBlas, HermitianPotrfResidualSmall) {
  Rng rng(307);
  const index_t n = 40;
  std::vector<Z> a(static_cast<std::size_t>(n * n));
  fill_spd(rng, a.data(), n, n);
  // Hermitian: diagonal real, A(i,j) == conj(A(j,i)).
  MatrixView<Z> av(a.data(), n, n, n);
  for (index_t d = 0; d < n; ++d) EXPECT_NEAR(av(d, d).imag(), 0.0, 1e-15);
  auto fac = a;
  MatrixView<Z> fv(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<Z>(Uplo::Lower, fv, 8), 0);
  EXPECT_LT(blas::potrf_residual<Z>(Uplo::Lower, ConstMatrixView<Z>(a.data(), n, n, n), fv),
            1e-14);
}

TEST(ComplexBlas, UpperHermitianPotrf) {
  Rng rng(309);
  const index_t n = 21;
  std::vector<Z> a(static_cast<std::size_t>(n * n));
  fill_spd(rng, a.data(), n, n);
  auto fac = a;
  MatrixView<Z> fv(fac.data(), n, n, n);
  ASSERT_EQ(blas::potrf<Z>(Uplo::Upper, fv, 6), 0);
  EXPECT_LT(blas::potrf_residual<Z>(Uplo::Upper, ConstMatrixView<Z>(a.data(), n, n, n), fv),
            1e-14);
}

// ---------------------------------------------------------------------------
// vbatched routines with complex scalars
// ---------------------------------------------------------------------------

template <typename T>
void check_complex_batch(Queue& q, Batch<T>& batch,
                         const std::vector<std::vector<T>>& originals, double tol) {
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
    const int n = batch.sizes()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<T> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<T>(Uplo::Lower, orig, batch.matrix(i)), tol)
        << "matrix " << i;
  }
  (void)q;
}

class ComplexPotrfTest : public ::testing::TestWithParam<PotrfPath> {};

TEST_P(ComplexPotrfTest, ZpotrfVbatchedFactorsRandomBatch) {
  Queue q;
  Rng rng(311);
  auto sizes = uniform_sizes(rng, 40, 90);
  Batch<Z> batch(q, sizes);
  batch.fill_spd(rng);
  std::vector<std::vector<Z>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  PotrfOptions opts;
  opts.path = GetParam();
  const auto r = potrf_vbatched<Z>(q, Uplo::Lower, batch, opts);
  EXPECT_GT(r.seconds, 0.0);
  check_complex_batch(q, batch, originals, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Paths, ComplexPotrfTest,
                         ::testing::Values(PotrfPath::Fused, PotrfPath::Separated));

TEST(ComplexPotrf, CpotrfVbatchedSinglePrecision) {
  Queue q;
  Rng rng(313);
  auto sizes = uniform_sizes(rng, 25, 64);
  Batch<C> batch(q, sizes);
  batch.fill_spd(rng);
  std::vector<std::vector<C>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));
  potrf_vbatched<C>(q, Uplo::Lower, batch);
  check_complex_batch(q, batch, originals, 2e-5);
}

TEST(ComplexPotrf, EtmVariantsProduceIdenticalFactors) {
  Rng size_rng(315);
  const auto sizes = uniform_sizes(size_rng, 20, 70);
  std::vector<std::vector<Z>> reference;
  bool first = true;
  for (EtmMode etm : {EtmMode::Classic, EtmMode::Aggressive}) {
    for (bool sorting : {false, true}) {
      Queue q;
      Batch<Z> batch(q, sizes);
      Rng fill(317);
      batch.fill_spd(fill);
      PotrfOptions opts;
      opts.path = PotrfPath::Fused;
      opts.etm = etm;
      opts.implicit_sorting = sorting;
      potrf_vbatched<Z>(q, Uplo::Lower, batch, opts);
      std::vector<std::vector<Z>> snap;
      for (int i = 0; i < batch.count(); ++i) snap.push_back(batch.copy_matrix(i));
      if (first) {
        reference = std::move(snap);
        first = false;
      } else {
        EXPECT_EQ(snap, reference);
      }
    }
  }
}

TEST(ComplexPotrs, SolvesHermitianSystems) {
  Queue q;
  Rng rng(319);
  std::vector<int> sizes{12, 28};
  std::vector<int> nrhs{2, 1};
  Batch<Z> a(q, sizes);
  a.fill_spd(rng);
  std::vector<std::vector<Z>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  RectBatch<Z> b(q, sizes, nrhs);
  std::vector<std::vector<Z>> x_true;
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int r = nrhs[static_cast<std::size_t>(i)];
    std::vector<Z> x(static_cast<std::size_t>(n) * r);
    Rng xr(static_cast<std::uint64_t>(500 + i));
    fill_general(xr, x.data(), n, r, n);
    ConstMatrixView<Z> av(aorig[static_cast<std::size_t>(i)].data(), n, n, n);
    ConstMatrixView<Z> xv(x.data(), n, r, n);
    blas::gemm<Z>(Trans::NoTrans, Trans::NoTrans, Z(1), av, xv, Z(0), b.matrix(i));
    x_true.push_back(std::move(x));
  }

  potrf_vbatched<Z>(q, Uplo::Lower, a);
  potrs_vbatched<Z>(q, Uplo::Lower, a, b);
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int r = nrhs[static_cast<std::size_t>(i)];
    auto x = b.matrix(i);
    for (int c = 0; c < r; ++c)
      for (int row = 0; row < n; ++row)
        EXPECT_NEAR(std::abs(x(row, c) -
                             x_true[static_cast<std::size_t>(i)]
                                   [static_cast<std::size_t>(row + c * n)]),
                    0.0, 1e-9);
  }
}

TEST(ComplexPotri, ProducesHermitianInverse) {
  Queue q;
  Rng rng(321);
  std::vector<int> sizes{10, 17};
  Batch<Z> a(q, sizes);
  a.fill_spd(rng);
  std::vector<std::vector<Z>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  potrf_vbatched<Z>(q, Uplo::Lower, a);
  potri_vbatched<Z>(q, Uplo::Lower, a);

  for (int idx = 0; idx < a.count(); ++idx) {
    const int n = sizes[static_cast<std::size_t>(idx)];
    auto tri = a.matrix(idx);
    // Complete Hermitian: upper = conj(lower).
    std::vector<Z> inv(static_cast<std::size_t>(n) * n);
    MatrixView<Z> iv(inv.data(), n, n, n);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) iv(r, c) = r >= c ? tri(r, c) : std::conj(tri(c, r));
    ConstMatrixView<Z> av(aorig[static_cast<std::size_t>(idx)].data(), n, n, n);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) {
        Z sum(0);
        for (int k = 0; k < n; ++k) sum += av(r, k) * iv(k, c);
        EXPECT_NEAR(std::abs(sum - (r == c ? Z(1) : Z(0))), 0.0, 1e-9);
      }
  }
}

TEST(ComplexBlasVbatched, PublicGemmMatchesReference) {
  Queue q;
  Rng rng(323);
  const std::vector<int> m{11, 23}, n{9, 15}, k{6, 12};
  RectBatch<Z> a(q, m, k), b(q, k, n), c(q, m, n);
  a.fill_general(rng);
  b.fill_general(rng);
  c.fill_general(rng);
  std::vector<std::vector<Z>> cref;
  for (int i = 0; i < c.count(); ++i) cref.push_back(c.copy_matrix(i));

  gemm_vbatched<Z>(q, Trans::NoTrans, Trans::NoTrans, Z(2, -1), a, b, Z(0.5, 0.25), c);

  for (int i = 0; i < c.count(); ++i) {
    MatrixView<Z> expect(cref[static_cast<std::size_t>(i)].data(),
                         m[static_cast<std::size_t>(i)], n[static_cast<std::size_t>(i)],
                         m[static_cast<std::size_t>(i)]);
    blas::gemm<Z>(Trans::NoTrans, Trans::NoTrans, Z(2, -1),
                  ConstMatrixView<Z>(a.matrix(i).data(), a.matrix(i).rows(),
                                     a.matrix(i).cols(), a.matrix(i).ld()),
                  ConstMatrixView<Z>(b.matrix(i).data(), b.matrix(i).rows(),
                                     b.matrix(i).cols(), b.matrix(i).ld()),
                  Z(0.5, 0.25), expect);
    auto got = c.matrix(i);
    for (index_t jc = 0; jc < got.cols(); ++jc)
      for (index_t ir = 0; ir < got.rows(); ++ir)
        EXPECT_NEAR(std::abs(got(ir, jc) - expect(ir, jc)), 0.0, 1e-11);
  }
}

TEST(ComplexTypes, TraitsAndHelpers) {
  static_assert(is_complex_v<Z>);
  static_assert(!is_complex_v<double>);
  static_assert(std::is_same_v<real_t<Z>, double>);
  static_assert(std::is_same_v<real_t<float>, float>);
  EXPECT_EQ(precision_v<Z>, Precision::Double);
  EXPECT_EQ(precision_v<C>, Precision::Single);
  EXPECT_EQ(precision_of<Z>::blas_prefix, 'z');
  EXPECT_EQ(conj_val(Z(1, 2)), Z(1, -2));
  EXPECT_EQ(conj_val(3.5), 3.5);
  EXPECT_EQ(real_val(Z(1, 2)), 1.0);
}

}  // namespace
