// The MAGMA-style hybrid CPU+GPU baseline (core/hybrid.cpp, paper §IV-F).
//
// The hybrid path had only a smoke test; this suite pins down its numerics
// (residuals for both uplos and float), its modelled-time behaviour
// (monotone growth with batch size, per-step transfer/launch overheads
// dominating small matrices) and its info reporting.
#include <gtest/gtest.h>

#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/hybrid.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;

template <typename T>
std::vector<std::vector<T>> snapshot(Batch<T>& batch) {
  std::vector<std::vector<T>> out;
  out.reserve(static_cast<std::size_t>(batch.count()));
  for (int i = 0; i < batch.count(); ++i) out.push_back(batch.copy_matrix(i));
  return out;
}

template <typename T>
void expect_residuals(Queue& q, Batch<T>& batch, const std::vector<std::vector<T>>& originals,
                      Uplo uplo, double tol) {
  ASSERT_TRUE(q.full());
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
    const int n = batch.sizes()[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    ConstMatrixView<T> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<T>(uplo, orig, batch.matrix(i)), tol) << "matrix " << i;
  }
}

TEST(Hybrid, ResidualsHoldForBothUplos) {
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
    Queue q;
    Rng rng(71);
    auto sizes = uniform_sizes(rng, 10, 150);
    Batch<double> batch(q, sizes);
    batch.fill_spd(rng);
    const auto originals = snapshot(batch);
    const auto r = potrf_hybrid_sequence<double>(q, cpu::CpuSpec::dual_e5_2670(), uplo, batch);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.flops, 0.0);
    expect_residuals(q, batch, originals, uplo, 1e-12);
  }
}

TEST(Hybrid, SinglePrecisionResiduals) {
  Queue q;
  Rng rng(73);
  auto sizes = uniform_sizes(rng, 8, 120);
  Batch<float> batch(q, sizes);
  batch.fill_spd(rng);
  const auto originals = snapshot(batch);
  potrf_hybrid_sequence<float>(q, cpu::CpuSpec::dual_e5_2670(), Uplo::Lower, batch);
  expect_residuals(q, batch, originals, Uplo::Lower, 1e-4);
}

TEST(Hybrid, ModelledTimeGrowsMonotonicallyWithBatchSize) {
  // Doubling the batch roughly doubles the sequential hybrid time: each
  // extra matrix pays its own transfers, panels and launches.
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  const cpu::CpuSpec cpu = cpu::CpuSpec::dual_e5_2670();
  double prev = 0.0;
  for (int count : {10, 20, 40, 80}) {
    Rng rng(79);  // same stream: the first `count` sizes are a superset
    auto sizes = gaussian_sizes(rng, count, 256);
    Batch<double> batch(q, sizes);
    const auto r = potrf_hybrid_sequence<double>(q, cpu, Uplo::Lower, batch);
    EXPECT_GT(r.seconds, prev) << "batch " << count;
    prev = r.seconds;
  }
}

TEST(Hybrid, PerMatrixOverheadsDominateSmallSizes) {
  // A batch of tiny matrices is bounded below by its PCIe latencies alone:
  // 2 transfers per matrix plus 2 per panel step. This is exactly why the
  // paper rules the hybrid approach out for batched workloads.
  Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  const int count = 200;
  std::vector<int> sizes(count, 32);
  Batch<double> batch(q, sizes);
  const auto r =
      potrf_hybrid_sequence<double>(q, cpu::CpuSpec::dual_e5_2670(), Uplo::Lower, batch);
  const double pcie_floor = count * 4.0 * q.spec().pcie_latency_us * 1e-6;
  EXPECT_GT(r.seconds, pcie_floor);
}

TEST(Hybrid, SkipsEmptyMatricesAndKeepsInfoClean) {
  Queue q;
  std::vector<int> sizes{0, 64, 0, 48};
  Batch<double> batch(q, sizes);
  Rng rng(83);
  batch.fill_spd(rng);
  const auto r = potrf_hybrid_sequence<double>(q, cpu::CpuSpec::dual_e5_2670(), Uplo::Lower,
                                               batch);
  EXPECT_GT(r.seconds, 0.0);
  for (int i = 0; i < batch.count(); ++i)
    EXPECT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
}

}  // namespace
