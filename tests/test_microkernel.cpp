// Conformance suite for the blocked micro-kernel engine (docs/blas.md):
// every blocked path (gemm for all four trans combinations, syrk/herk,
// trsm, trmm) is compared against the *_ref reference loops across all four
// precisions, all uplo/side/diag combinations, and tail sizes that are not
// multiples of the MR/NR/KC tiling parameters — including 0 and 1.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/blas/microkernel.hpp"
#include "vbatch/kernels/fused_step_math.hpp"
#include "vbatch/util/rng.hpp"

namespace {

using namespace vbatch;
using blas::micro::Dispatch;
using blas::micro::DispatchGuard;
using blas::micro::Isa;
using blas::micro::IsaGuard;
using blas::micro::isa_supported;
using blas::micro::to_string;

template <typename T>
T make_scalar(double re, double im) {
  if constexpr (is_complex_v<T>) {
    return T(static_cast<real_t<T>>(re), static_cast<real_t<T>>(im));
  } else {
    return static_cast<T>(re);
  }
}

template <typename T>
double tol_for(index_t k) {
  const double eps = static_cast<double>(std::numeric_limits<real_t<T>>::epsilon());
  return 64.0 * eps * static_cast<double>(std::max<index_t>(k, 1));
}

template <typename T>
double max_rel_diff(ConstMatrixView<T> x, ConstMatrixView<T> y) {
  double diff = 0.0, scale = 1.0;
  for (index_t j = 0; j < x.cols(); ++j)
    for (index_t i = 0; i < x.rows(); ++i) {
      diff = std::max(diff, static_cast<double>(std::abs(x(i, j) - y(i, j))));
      scale = std::max(scale, static_cast<double>(std::abs(y(i, j))));
    }
  return diff / scale;
}

template <typename T>
std::vector<T> random_buffer(Rng& rng, index_t rows, index_t cols, index_t ld) {
  std::vector<T> buf(static_cast<std::size_t>(ld * std::max<index_t>(cols, 1)) + 1);
  if (rows > 0 && cols > 0) fill_general(rng, buf.data(), rows, cols, ld);
  return buf;
}

template <typename T>
class MicrokernelTest : public ::testing::Test {};

using Precisions =
    ::testing::Types<float, double, std::complex<float>, std::complex<double>>;
TYPED_TEST_SUITE(MicrokernelTest, Precisions);

// ---------------------------------------------------------------------------
// GEMM: blocked engine vs gemm_ref, all trans combos, tail sizes.
// ---------------------------------------------------------------------------

TYPED_TEST(MicrokernelTest, GemmMatchesRefAcrossShapesAndTrans) {
  using T = TypeParam;
  const index_t dims[] = {0, 1, 2, 3, 5, 7, 9, 17, 33};
  const T alpha = make_scalar<T>(1.3, -0.4);
  const T beta = make_scalar<T>(-0.7, 0.2);
  Rng rng(11);
  for (Trans ta : {Trans::NoTrans, Trans::Trans})
    for (Trans tb : {Trans::NoTrans, Trans::Trans})
      for (index_t m : dims)
        for (index_t n : dims)
          for (index_t k : dims) {
            const index_t ar = ta == Trans::NoTrans ? m : k;
            const index_t ac = ta == Trans::NoTrans ? k : m;
            const index_t br = tb == Trans::NoTrans ? k : n;
            const index_t bc = tb == Trans::NoTrans ? n : k;
            const index_t lda = ar + 3, ldb = br + 1, ldc = m + 2;
            auto abuf = random_buffer<T>(rng, ar, ac, lda);
            auto bbuf = random_buffer<T>(rng, br, bc, ldb);
            auto cblk = random_buffer<T>(rng, m, n, ldc);
            auto cref = cblk;
            ConstMatrixView<T> a(abuf.data(), ar, ac, lda);
            ConstMatrixView<T> b(bbuf.data(), br, bc, ldb);
            MatrixView<T> c1(cblk.data(), m, n, ldc);
            MatrixView<T> c2(cref.data(), m, n, ldc);
            blas::micro::gemm_blocked<T>(ta, tb, alpha, a, b, beta, c1);
            blas::gemm_ref<T>(ta, tb, alpha, a, b, beta, c2);
            ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k))
                << "m=" << m << " n=" << n << " k=" << k << " ta=" << to_string(ta)
                << " tb=" << to_string(tb);
          }
}

TYPED_TEST(MicrokernelTest, GemmKcAndCacheBlockBoundaries) {
  using T = TypeParam;
  constexpr index_t KC = blas::micro::Tiling<T>::KC;
  constexpr index_t MC = blas::micro::Tiling<T>::MC;
  constexpr index_t NC = blas::micro::Tiling<T>::NC;
  Rng rng(13);
  const T alpha = make_scalar<T>(0.9, 0.3);
  // k straddling the KC panel depth exercises multi-pass accumulation into
  // C; m/n straddling MC/NC exercise the outer cache blocking.
  const index_t shapes[][3] = {{13, 9, KC - 1},  {13, 9, KC},     {13, 9, KC + 1},
                               {MC + 1, 9, 40},  {9, NC + 1, 40}, {MC + 1, NC + 1, KC + 1}};
  for (const auto& s : shapes) {
    const index_t m = s[0], n = s[1], k = s[2];
    auto abuf = random_buffer<T>(rng, m, k, m);
    auto bbuf = random_buffer<T>(rng, k, n, k);
    auto cblk = random_buffer<T>(rng, m, n, m);
    auto cref = cblk;
    ConstMatrixView<T> a(abuf.data(), m, k, m);
    ConstMatrixView<T> b(bbuf.data(), k, n, k);
    MatrixView<T> c1(cblk.data(), m, n, m);
    MatrixView<T> c2(cref.data(), m, n, m);
    blas::micro::gemm_blocked<T>(Trans::NoTrans, Trans::NoTrans, alpha, a, b, T(1), c1);
    blas::gemm_ref<T>(Trans::NoTrans, Trans::NoTrans, alpha, a, b, T(1), c2);
    ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k)) << "m=" << m << " n=" << n << " k=" << k;
  }
}

TYPED_TEST(MicrokernelTest, GemmBlockedIsDeterministic) {
  using T = TypeParam;
  Rng rng(17);
  const index_t m = 70, n = 50, k = 90;
  auto abuf = random_buffer<T>(rng, m, k, m);
  auto bbuf = random_buffer<T>(rng, n, k, n);  // stored n×k, used as Bᵀ (k×n)
  auto c1 = random_buffer<T>(rng, m, n, m);
  auto c2 = c1;
  ConstMatrixView<T> a(abuf.data(), m, k, m);
  ConstMatrixView<T> b(bbuf.data(), n, k, n);
  MatrixView<T> v1(c1.data(), m, n, m);
  MatrixView<T> v2(c2.data(), m, n, m);
  blas::micro::gemm_blocked<T>(Trans::NoTrans, Trans::Trans, make_scalar<T>(1.1, 0.2), a, b,
                               make_scalar<T>(0.4, -0.1), v1);
  blas::micro::gemm_blocked<T>(Trans::NoTrans, Trans::Trans, make_scalar<T>(1.1, 0.2), a, b,
                               make_scalar<T>(0.4, -0.1), v2);
  ASSERT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(T)), 0);
}

// Every ISA the host can execute must agree with the reference loops; the
// dispatcher's job is to change speed, never answers. Exercises all four
// trans combos at sizes that straddle every compiled tile width (the widest
// is AVX-512 float MR=48) plus the deeper-than-KC accumulation path.
TYPED_TEST(MicrokernelTest, GemmMatchesRefUnderEverySupportedIsa) {
  using T = TypeParam;
  const T alpha = make_scalar<T>(1.2, 0.5);
  const T beta = make_scalar<T>(0.6, -0.3);
  for (Isa isa : {Isa::Scalar, Isa::Sse2, Isa::Neon, Isa::Avx2, Isa::Avx512}) {
    if (!isa_supported(isa)) continue;
    IsaGuard guard(isa);
    Rng rng(19);
    const index_t shapes[][3] = {{1, 1, 1}, {7, 5, 9}, {49, 9, 33}, {97, 23, 300}};
    for (Trans ta : {Trans::NoTrans, Trans::Trans})
      for (Trans tb : {Trans::NoTrans, Trans::Trans})
        for (const auto& s : shapes) {
          const index_t m = s[0], n = s[1], k = s[2];
          const index_t ar = ta == Trans::NoTrans ? m : k;
          const index_t ac = ta == Trans::NoTrans ? k : m;
          const index_t br = tb == Trans::NoTrans ? k : n;
          const index_t bc = tb == Trans::NoTrans ? n : k;
          auto abuf = random_buffer<T>(rng, ar, ac, ar);
          auto bbuf = random_buffer<T>(rng, br, bc, br);
          auto cblk = random_buffer<T>(rng, m, n, m);
          auto cref = cblk;
          ConstMatrixView<T> a(abuf.data(), ar, ac, ar);
          ConstMatrixView<T> b(bbuf.data(), br, bc, br);
          MatrixView<T> c1(cblk.data(), m, n, m);
          MatrixView<T> c2(cref.data(), m, n, m);
          blas::micro::gemm_blocked<T>(ta, tb, alpha, a, b, beta, c1);
          blas::gemm_ref<T>(ta, tb, alpha, a, b, beta, c2);
          ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k))
              << to_string(isa) << " m=" << m << " n=" << n << " k=" << k;
        }
  }
}

// ---------------------------------------------------------------------------
// SYRK / HERK: blocked decomposition vs syrk_ref, both triangles untouched
// outside the requested one.
// ---------------------------------------------------------------------------

TYPED_TEST(MicrokernelTest, SyrkMatchesRefAndPreservesOtherTriangle) {
  using T = TypeParam;
  const index_t ns[] = {0, 1, 5, 31, 32, 33, 70};
  const index_t ks[] = {0, 1, 8, 40};
  Rng rng(19);
  // herk semantics: real alpha/beta keep C Hermitian.
  const T alpha = make_scalar<T>(-1.1, 0.0);
  const T beta = make_scalar<T>(0.5, 0.0);
  for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
    for (Trans trans : {Trans::NoTrans, Trans::Trans})
      for (index_t n : ns)
        for (index_t k : ks) {
          const index_t ar = trans == Trans::NoTrans ? n : k;
          const index_t ac = trans == Trans::NoTrans ? k : n;
          const index_t lda = ar + 2;
          auto abuf = random_buffer<T>(rng, ar, ac, lda);
          auto cblk = random_buffer<T>(rng, n, n, n);
          auto cref = cblk;
          const auto corig = cblk;
          ConstMatrixView<T> a(abuf.data(), ar, ac, lda);
          MatrixView<T> c1(cblk.data(), n, n, n);
          MatrixView<T> c2(cref.data(), n, n, n);
          {
            DispatchGuard guard(Dispatch::ForceBlocked);
            blas::syrk<T>(uplo, trans, alpha, a, beta, c1);
          }
          blas::syrk_ref<T>(uplo, trans, alpha, a, beta, c2);
          ASSERT_LT(max_rel_diff<T>(c1, c2), tol_for<T>(k))
              << "n=" << n << " k=" << k << " " << to_string(uplo) << " " << to_string(trans);
          for (index_t j = 0; j < n; ++j)
            for (index_t i = 0; i < n; ++i) {
              const bool in_tri = uplo == Uplo::Lower ? i >= j : i <= j;
              if (!in_tri) {
                ASSERT_EQ(c1(i, j), corig[static_cast<std::size_t>(i + j * n)])
                    << "off-triangle touched at " << i << "," << j;
              }
            }
        }
}

// ---------------------------------------------------------------------------
// TRSM / TRMM: recursive blocked paths vs the reference loops for all 16
// side/uplo/trans/diag combinations, sizes above and below the recursion
// base and with degenerate right-hand sides.
// ---------------------------------------------------------------------------

TYPED_TEST(MicrokernelTest, TrsmMatchesRefAllCombos) {
  using T = TypeParam;
  const index_t shapes[][2] = {{1, 1}, {5, 3}, {33, 8}, {48, 48}, {67, 1}, {67, 33}, {96, 17}};
  Rng rng(23);
  const T alpha = make_scalar<T>(1.5, -0.2);
  for (Side side : {Side::Left, Side::Right})
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
      for (Trans trans : {Trans::NoTrans, Trans::Trans})
        for (Diag diag : {Diag::NonUnit, Diag::Unit})
          for (const auto& s : shapes) {
            const index_t m = s[0], n = s[1];
            const index_t ka = side == Side::Left ? m : n;
            auto abuf = random_buffer<T>(rng, ka, ka, ka);
            MatrixView<T> av(abuf.data(), ka, ka, ka);
            for (index_t d = 0; d < ka; ++d)
              av(d, d) = make_scalar<T>(4.0 + static_cast<double>(d), 0.5);
            auto bblk = random_buffer<T>(rng, m, n, m);
            auto bref = bblk;
            MatrixView<T> b1(bblk.data(), m, n, m);
            MatrixView<T> b2(bref.data(), m, n, m);
            {
              DispatchGuard guard(Dispatch::ForceBlocked);
              blas::trsm<T>(side, uplo, trans, diag, alpha, av, b1);
            }
            blas::trsm_ref<T>(side, uplo, trans, diag, alpha, av, b2);
            ASSERT_LT(max_rel_diff<T>(b1, b2), tol_for<T>(ka))
                << "m=" << m << " n=" << n << " " << to_string(side) << " " << to_string(uplo)
                << " " << to_string(trans) << " " << to_string(diag);
          }
}

TYPED_TEST(MicrokernelTest, TrmmMatchesRefAllCombos) {
  using T = TypeParam;
  const index_t shapes[][2] = {{1, 1}, {5, 3}, {33, 8}, {48, 48}, {67, 1}, {67, 33}, {96, 17}};
  Rng rng(29);
  const T alpha = make_scalar<T>(0.8, 0.3);
  for (Side side : {Side::Left, Side::Right})
    for (Uplo uplo : {Uplo::Lower, Uplo::Upper})
      for (Trans trans : {Trans::NoTrans, Trans::Trans})
        for (Diag diag : {Diag::NonUnit, Diag::Unit})
          for (const auto& s : shapes) {
            const index_t m = s[0], n = s[1];
            const index_t ka = side == Side::Left ? m : n;
            auto abuf = random_buffer<T>(rng, ka, ka, ka);
            auto bblk = random_buffer<T>(rng, m, n, m);
            auto bref = bblk;
            ConstMatrixView<T> av(abuf.data(), ka, ka, ka);
            MatrixView<T> b1(bblk.data(), m, n, m);
            MatrixView<T> b2(bref.data(), m, n, m);
            {
              DispatchGuard guard(Dispatch::ForceBlocked);
              blas::trmm<T>(side, uplo, trans, diag, alpha, av, b1);
            }
            blas::trmm_ref<T>(side, uplo, trans, diag, alpha, av, b2);
            ASSERT_LT(max_rel_diff<T>(b1, b2), tol_for<T>(ka))
                << "m=" << m << " n=" << n << " " << to_string(side) << " " << to_string(uplo)
                << " " << to_string(trans) << " " << to_string(diag);
          }
}

// ---------------------------------------------------------------------------
// Empty extents are no-ops through every blocked entry point.
// ---------------------------------------------------------------------------

TYPED_TEST(MicrokernelTest, ZeroExtentsAreNoops) {
  using T = TypeParam;
  DispatchGuard guard(Dispatch::ForceBlocked);
  std::vector<T> buf(16, T(1));
  MatrixView<T> c(buf.data(), 2, 2, 2);
  ConstMatrixView<T> a0(buf.data(), 2, 0, 2);
  ConstMatrixView<T> b0(buf.data(), 0, 2, 2);
  blas::gemm<T>(Trans::NoTrans, Trans::NoTrans, T(1), a0, b0, T(1), c);
  EXPECT_EQ(c(0, 0), T(1));
  MatrixView<T> bempty(buf.data(), 2, 0, 2);
  ConstMatrixView<T> asq(buf.data(), 2, 2, 2);
  blas::trsm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, T(1), asq, bempty);
  blas::trmm<T>(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, T(1), asq, bempty);
  MatrixView<T> cempty(buf.data(), 0, 0, 1);
  ConstMatrixView<T> aempty(buf.data(), 0, 3, 1);
  blas::syrk<T>(Uplo::Lower, Trans::NoTrans, T(1), aempty, T(0), cempty);
  EXPECT_EQ(buf[0], T(1));
}

// ---------------------------------------------------------------------------
// fused_step_math: the engine must leave the fused-path factorization
// residual unchanged within tolerance, and Auto-mode results must be
// reproducible bit-for-bit.
// ---------------------------------------------------------------------------

double fused_path_residual(Dispatch d, std::vector<double>& out) {
  const index_t n = 96;
  const int nb = 32;
  Rng rng(31);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  fill_spd(rng, a.data(), n, n);
  const auto orig = a;
  MatrixView<double> av(a.data(), n, n, n);
  DispatchGuard guard(d);
  for (int step = 0; static_cast<index_t>(step) * nb < n; ++step)
    EXPECT_EQ(kernels::fused_step_math<double>(Uplo::Lower, av, step, nb), 0);
  out = a;
  return blas::potrf_residual<double>(Uplo::Lower,
                                      ConstMatrixView<double>(orig.data(), n, n, n),
                                      ConstMatrixView<double>(a.data(), n, n, n));
}

TEST(FusedStepMicrokernel, ResidualUnchangedAndDeterministic) {
  std::vector<double> ref_factor, blk_factor, blk_factor2;
  const double ref_res = fused_path_residual(Dispatch::ForceRef, ref_factor);
  const double blk_res = fused_path_residual(Dispatch::Auto, blk_factor);
  const double blk_res2 = fused_path_residual(Dispatch::Auto, blk_factor2);
  EXPECT_LT(ref_res, 1e-14);
  EXPECT_LT(blk_res, 1e-14);
  EXPECT_NEAR(blk_res, ref_res, 1e-14);
  EXPECT_EQ(blk_res2, blk_res);
  // Same dispatch mode, same input → bit-identical factor.
  ASSERT_EQ(blk_factor.size(), blk_factor2.size());
  ASSERT_EQ(std::memcmp(blk_factor.data(), blk_factor2.data(),
                        blk_factor.size() * sizeof(double)),
            0);
}

// The blocked potrf in blas/ (used by the CPU baselines) inherits the
// engine through syrk/gemm/trsm; its residual gate must hold in both modes.
TEST(FusedStepMicrokernel, BlockedPotrfResidualBothModes) {
  const index_t n = 130;
  for (Dispatch d : {Dispatch::ForceRef, Dispatch::Auto}) {
    Rng rng(37);
    std::vector<double> a(static_cast<std::size_t>(n * n));
    fill_spd(rng, a.data(), n, n);
    const auto orig = a;
    MatrixView<double> av(a.data(), n, n, n);
    DispatchGuard guard(d);
    ASSERT_EQ(blas::potrf<double>(Uplo::Lower, av), 0);
    EXPECT_LT(blas::potrf_residual<double>(Uplo::Lower,
                                           ConstMatrixView<double>(orig.data(), n, n, n),
                                           ConstMatrixView<double>(a.data(), n, n, n)),
              1e-14);
  }
}

}  // namespace
