// Tests for the classic pre-fusion building-block baseline (the Fig. 4
// comparator), the cost-model's property invariants, and the cross-device
// presets (K40c vs P100).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/potrf_classic.hpp"
#include "vbatch/core/potrf_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"
#include "vbatch/sim/scheduler.hpp"

namespace {

using namespace vbatch;

// ---------------------------------------------------------------------------
// Classic building-block baseline numerics
// ---------------------------------------------------------------------------

class ClassicTest : public ::testing::TestWithParam<std::tuple<int, Uplo>> {};

TEST_P(ClassicTest, FactorsFixedBatchCorrectly) {
  const auto [n, uplo] = GetParam();
  Queue q;
  Rng rng(401);
  Batch<double> batch = Batch<double>::fixed(q, 12, n);
  batch.fill_spd(rng);
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  const auto r = potrf_batched_classic<double>(q, uplo, batch);
  EXPECT_GT(r.gflops(), 0.0);
  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0);
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    EXPECT_LT(blas::potrf_residual<double>(uplo, orig, batch.matrix(i)), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ClassicTest,
                         ::testing::Combine(::testing::Values(5, 16, 40, 100),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper)));

TEST(Classic, VariableSizesAndIdenticalFactorsToFused) {
  Rng size_rng(403);
  const auto sizes = uniform_sizes(size_rng, 20, 60);
  Queue q1, q2;
  Batch<double> b1(q1, sizes), b2(q2, sizes);
  Rng f1(405), f2(405);
  b1.fill_spd(f1);
  b2.fill_spd(f2);

  potrf_batched_classic<double>(q1, Uplo::Lower, b1);
  PotrfOptions fused;
  fused.path = PotrfPath::Fused;
  potrf_vbatched<double>(q2, Uplo::Lower, b2, fused);
  for (int i = 0; i < b1.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    auto a1 = b1.matrix(i);
    auto a2 = b2.matrix(i);
    for (int c = 0; c < n; ++c)
      for (int r = c; r < n; ++r) EXPECT_NEAR(a1(r, c), a2(r, c), 1e-11);
  }
}

TEST(Classic, NonSpdReportsGlobalIndex) {
  Queue q;
  Rng rng(407);
  Batch<double> batch = Batch<double>::fixed(q, 3, 24);
  batch.fill_spd(rng);
  batch.matrix(1)(20, 20) = -1e9;
  potrf_batched_classic<double>(q, Uplo::Lower, batch);
  EXPECT_EQ(batch.info()[0], 0);
  EXPECT_EQ(batch.info()[1], 21);
  EXPECT_EQ(batch.info()[2], 0);
}

TEST(Classic, UsesManyMoreLaunchesThanFused) {
  // The defining overhead of the pre-fusion approach (§III-D motivation).
  Rng size_rng(409);
  const auto sizes = uniform_sizes(size_rng, 50, 96);
  Queue q1(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Queue q2(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Batch<double> b1(q1, sizes), b2(q2, sizes);
  potrf_batched_classic<double>(q1, Uplo::Lower, b1);
  PotrfOptions fused;
  fused.path = PotrfPath::Fused;
  fused.implicit_sorting = false;
  potrf_vbatched<double>(q2, Uplo::Lower, b2, fused);
  EXPECT_GT(q1.device().timeline().size(), 2 * q2.device().timeline().size());
}

// ---------------------------------------------------------------------------
// Cost-model property invariants
// ---------------------------------------------------------------------------

sim::BlockCost cost_with(double flops, double bytes, int active, int live) {
  sim::BlockCost c;
  c.flops = flops;
  c.bytes = bytes;
  c.active_threads = active;
  c.live_threads = live;
  return c;
}

TEST(CostModel, MonotoneInFlops) {
  const auto spec = sim::DeviceSpec::k40c();
  double prev = 0.0;
  for (double f : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    const double t = sim::block_seconds(spec, Precision::Double, 4, cost_with(f, 0, 64, 64));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, MonotoneInBytes) {
  const auto spec = sim::DeviceSpec::k40c();
  double prev = 0.0;
  for (double b : {1e4, 1e5, 1e6, 1e7}) {
    const double t = sim::block_seconds(spec, Precision::Double, 4, cost_with(0, b, 64, 64));
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, MoreActiveThreadsNeverSlower) {
  const auto spec = sim::DeviceSpec::k40c();
  double prev = 1e9;
  for (int threads : {1, 2, 4, 8, 16, 32, 64}) {
    const double t =
        sim::block_seconds(spec, Precision::Double, 1, cost_with(1e6, 0, threads, threads));
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(CostModel, SinglePrecisionFasterThanDouble) {
  const auto spec = sim::DeviceSpec::k40c();
  const auto c = cost_with(1e6, 0, 256, 256);
  EXPECT_LT(sim::block_seconds(spec, Precision::Single, 4, c),
            sim::block_seconds(spec, Precision::Double, 4, c));
}

TEST(CostModel, LatencyCyclesAddDirectly) {
  const auto spec = sim::DeviceSpec::k40c();
  auto base = cost_with(1e5, 0, 32, 32);
  const double t0 = sim::block_seconds(spec, Precision::Double, 1, base);
  base.latency_cycles = 10000.0;
  const double t1 = sim::block_seconds(spec, Precision::Double, 1, base);
  EXPECT_NEAR(t1 - t0, 10000.0 * spec.cycle_seconds(), 1e-12);
}

// ---------------------------------------------------------------------------
// Device presets
// ---------------------------------------------------------------------------

TEST(DevicePresets, P100PeaksMatchPublishedFigures) {
  const auto p = sim::DeviceSpec::p100();
  EXPECT_NEAR(p.peak_gflops(Precision::Double), 4759.6, 5.0);
  EXPECT_NEAR(p.peak_gflops(Precision::Single), 9519.1, 10.0);
  EXPECT_GT(p.mem_bandwidth_gbps, sim::DeviceSpec::k40c().mem_bandwidth_gbps);
}

TEST(DevicePresets, NewerDeviceRunsTheSameWorkloadFaster) {
  Rng size_rng(411);
  const auto sizes = uniform_sizes(size_rng, 500, 256);
  Queue kepler(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  Queue pascal(sim::DeviceSpec::p100(), sim::ExecMode::TimingOnly);
  Batch<double> b1(kepler, sizes), b2(pascal, sizes);
  const auto r1 = potrf_vbatched<double>(kepler, Uplo::Lower, b1);
  const auto r2 = potrf_vbatched<double>(pascal, Uplo::Lower, b2);
  EXPECT_GT(r2.gflops(), r1.gflops() * 1.5);
}

TEST(DevicePresets, NumericsIdenticalAcrossDevices) {
  Rng size_rng(413);
  const auto sizes = uniform_sizes(size_rng, 15, 50);
  Queue kepler(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  Queue pascal(sim::DeviceSpec::p100(), sim::ExecMode::Full);
  Batch<double> b1(kepler, sizes), b2(pascal, sizes);
  Rng f1(415), f2(415);
  b1.fill_spd(f1);
  b2.fill_spd(f2);
  potrf_vbatched<double>(kepler, Uplo::Lower, b1);
  potrf_vbatched<double>(pascal, Uplo::Lower, b2);
  for (int i = 0; i < b1.count(); ++i) EXPECT_EQ(b1.copy_matrix(i), b2.copy_matrix(i));
}

}  // namespace
