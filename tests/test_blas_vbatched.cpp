// Tests for the public vbatched BLAS layer: numerical agreement with the
// per-matrix reference across shapes and transposition combinations, the
// §III-A interface pairs, and the LAPACK-compliant argument checking of
// paper §V.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/arg_check.hpp"
#include "vbatch/core/blas_vbatched.hpp"
#include "vbatch/util/error.hpp"

namespace {

using namespace vbatch;

Queue& test_queue() {
  static Queue q(sim::DeviceSpec::k40c(), sim::ExecMode::Full);
  return q;
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

class GemmVbatchedTest : public ::testing::TestWithParam<std::tuple<Trans, Trans>> {};

TEST_P(GemmVbatchedTest, MatchesPerMatrixReference) {
  const auto [ta, tb] = GetParam();
  Queue& q = test_queue();
  Rng rng(101);
  const std::vector<int> m{17, 40, 1, 8}, n{25, 12, 1, 70}, k{9, 33, 1, 16};

  auto dims_a_rows = ta == Trans::NoTrans ? m : k;
  auto dims_a_cols = ta == Trans::NoTrans ? k : m;
  auto dims_b_rows = tb == Trans::NoTrans ? k : n;
  auto dims_b_cols = tb == Trans::NoTrans ? n : k;

  RectBatch<double> a(q, dims_a_rows, dims_a_cols);
  RectBatch<double> b(q, dims_b_rows, dims_b_cols);
  RectBatch<double> c(q, m, n);
  a.fill_general(rng);
  b.fill_general(rng);
  c.fill_general(rng);
  std::vector<std::vector<double>> cref;
  for (int i = 0; i < c.count(); ++i) cref.push_back(c.copy_matrix(i));

  const auto r = gemm_vbatched<double>(q, ta, tb, -1.5, a, b, 0.5, c);
  EXPECT_GT(r.gflops(), 0.0);

  for (int i = 0; i < c.count(); ++i) {
    MatrixView<double> expect(cref[static_cast<std::size_t>(i)].data(),
                              m[static_cast<std::size_t>(i)], n[static_cast<std::size_t>(i)],
                              m[static_cast<std::size_t>(i)]);
    blas::gemm<double>(ta, tb, -1.5,
                       ConstMatrixView<double>(a.matrix(i).data(), a.matrix(i).rows(),
                                               a.matrix(i).cols(), a.matrix(i).ld()),
                       ConstMatrixView<double>(b.matrix(i).data(), b.matrix(i).rows(),
                                               b.matrix(i).cols(), b.matrix(i).ld()),
                       0.5, expect);
    auto got = c.matrix(i);
    for (index_t jc = 0; jc < got.cols(); ++jc)
      for (index_t ir = 0; ir < got.rows(); ++ir)
        EXPECT_NEAR(got(ir, jc), expect(ir, jc), 1e-11) << "matrix " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(TransCombos, GemmVbatchedTest,
                         ::testing::Combine(::testing::Values(Trans::NoTrans, Trans::Trans),
                                            ::testing::Values(Trans::NoTrans, Trans::Trans)));

TEST(GemmVbatched, MaxInterfaceMatchesLapackLike) {
  Queue& q = test_queue();
  Rng rng(103);
  const std::vector<int> m{20, 35}, n{15, 28}, k{10, 22};
  RectBatch<double> a1(q, m, k), b1(q, k, n), c1(q, m, n);
  a1.fill_general(rng);
  b1.fill_general(rng);
  Rng rng2(103);
  RectBatch<double> a2(q, m, k), b2(q, k, n), c2(q, m, n);
  a2.fill_general(rng2);
  b2.fill_general(rng2);

  gemm_vbatched<double>(q, Trans::NoTrans, Trans::NoTrans, 1.0, a1, b1, 0.0, c1);
  gemm_vbatched_max<double>(q, Trans::NoTrans, Trans::NoTrans, 1.0, a2, b2, 0.0, c2, 35, 28);
  for (int i = 0; i < c1.count(); ++i) EXPECT_EQ(c1.copy_matrix(i), c2.copy_matrix(i));
}

TEST(GemmVbatched, InconsistentInnerDimensionRaisesLapackStyleError) {
  Queue& q = test_queue();
  const std::vector<int> m{8, 8}, n{8, 8}, k_a{4, 5}, k_b{4, 6};  // matrix 1 inconsistent
  RectBatch<double> a(q, m, k_a), b(q, k_b, n), c(q, m, n);
  try {
    gemm_vbatched<double>(q, Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c);
    FAIL() << "expected InvalidArgument";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidArgument);
    EXPECT_NE(std::string(e.what()).find("batch index 1"), std::string::npos);
  }
  // The per-matrix info array identifies the offender with a negative code.
  EXPECT_EQ(c.info()[0], 0);
  EXPECT_LT(c.info()[1], 0);
}

TEST(GemmVbatched, BatchCountMismatchThrows) {
  Queue& q = test_queue();
  const std::vector<int> two{4, 4}, one{4};
  RectBatch<double> a(q, two, two), b(q, two, two), c(q, one, one);
  EXPECT_THROW(gemm_vbatched<double>(q, Trans::NoTrans, Trans::NoTrans, 1.0, a, b, 0.0, c),
               Error);
}

// ---------------------------------------------------------------------------
// SYRK
// ---------------------------------------------------------------------------

class SyrkVbatchedApiTest : public ::testing::TestWithParam<std::tuple<Uplo, Trans>> {};

TEST_P(SyrkVbatchedApiTest, MatchesPerMatrixReference) {
  const auto [uplo, trans] = GetParam();
  Queue& q = test_queue();
  Rng rng(107);
  const std::vector<int> n{12, 30, 5}, k{7, 14, 3};
  auto a_rows = trans == Trans::NoTrans ? n : k;
  auto a_cols = trans == Trans::NoTrans ? k : n;

  RectBatch<double> a(q, a_rows, a_cols);
  Batch<double> c(q, n);
  a.fill_general(rng);
  for (int i = 0; i < c.count(); ++i) {
    fill_general(rng, c.matrix(i).data(), n[static_cast<std::size_t>(i)],
                 n[static_cast<std::size_t>(i)], c.matrix(i).ld());
  }
  std::vector<std::vector<double>> cref;
  for (int i = 0; i < c.count(); ++i) cref.push_back(c.copy_matrix(i));

  syrk_vbatched<double>(q, uplo, trans, 2.0, a, -1.0, c);

  for (int i = 0; i < c.count(); ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    MatrixView<double> expect(cref[static_cast<std::size_t>(i)].data(), ni, ni, ni);
    blas::syrk<double>(uplo, trans, 2.0,
                       ConstMatrixView<double>(a.matrix(i).data(), a.matrix(i).rows(),
                                               a.matrix(i).cols(), a.matrix(i).ld()),
                       -1.0, expect);
    auto got = c.matrix(i);
    for (index_t jc = 0; jc < ni; ++jc)
      for (index_t ir = 0; ir < ni; ++ir) {
        const bool in_tri = uplo == Uplo::Lower ? ir >= jc : ir <= jc;
        if (in_tri) EXPECT_NEAR(got(ir, jc), expect(ir, jc), 1e-11) << "matrix " << i;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Combos, SyrkVbatchedApiTest,
                         ::testing::Combine(::testing::Values(Uplo::Lower, Uplo::Upper),
                                            ::testing::Values(Trans::NoTrans, Trans::Trans)));

TEST(SyrkVbatchedApi, DimensionMismatchThrows) {
  Queue& q = test_queue();
  const std::vector<int> n{8, 8}, a_rows{8, 9}, k{4, 4};  // op(A) rows != n for matrix 1
  RectBatch<double> a(q, a_rows, k);
  Batch<double> c(q, n);
  EXPECT_THROW(syrk_vbatched<double>(q, Uplo::Lower, Trans::NoTrans, 1.0, a, 1.0, c), Error);
  EXPECT_LT(c.info()[1], 0);
}

// ---------------------------------------------------------------------------
// TRSM / TRMM
// ---------------------------------------------------------------------------

using TriApiParam = std::tuple<Side, Uplo, Trans, Diag>;

class TrsmVbatchedApiTest : public ::testing::TestWithParam<TriApiParam> {};

TEST_P(TrsmVbatchedApiTest, SolveThenMultiplyRoundTrips) {
  const auto [side, uplo, trans, diag] = GetParam();
  Queue& q = test_queue();
  Rng rng(109);
  const std::vector<int> m{9, 21, 4}, n{6, 13, 17};
  const auto ka = side == Side::Left ? m : n;

  Batch<double> a(q, ka);
  RectBatch<double> b(q, m, n);
  for (int i = 0; i < a.count(); ++i) {
    auto av = a.matrix(i);
    fill_general(rng, av.data(), av.rows(), av.cols(), av.ld());
    for (index_t d = 0; d < av.rows(); ++d) av(d, d) = 4.0 + static_cast<double>(d);
  }
  b.fill_general(rng);
  std::vector<std::vector<double>> borig;
  for (int i = 0; i < b.count(); ++i) borig.push_back(b.copy_matrix(i));

  const auto rs = trsm_vbatched<double>(q, side, uplo, trans, diag, 2.0, a, b);
  EXPECT_GT(rs.seconds, 0.0);
  trmm_vbatched<double>(q, side, uplo, trans, diag, 0.5, a, b);

  for (int i = 0; i < b.count(); ++i) {
    auto got = b.matrix(i);
    MatrixView<double> expect(borig[static_cast<std::size_t>(i)].data(), got.rows(),
                              got.cols(), got.rows());
    for (index_t jc = 0; jc < got.cols(); ++jc)
      for (index_t ir = 0; ir < got.rows(); ++ir)
        EXPECT_NEAR(got(ir, jc), expect(ir, jc), 1e-10) << "matrix " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, TrsmVbatchedApiTest,
                         ::testing::Combine(::testing::Values(Side::Left, Side::Right),
                                            ::testing::Values(Uplo::Lower, Uplo::Upper),
                                            ::testing::Values(Trans::NoTrans, Trans::Trans),
                                            ::testing::Values(Diag::NonUnit, Diag::Unit)));

TEST(TrsmVbatchedApi, WrongTriangleOrderThrows) {
  Queue& q = test_queue();
  const std::vector<int> m{8, 8}, n{6, 6}, ka{8, 7};  // matrix 1 triangle too small
  Batch<double> a(q, ka);
  RectBatch<double> b(q, m, n);
  EXPECT_THROW(
      trsm_vbatched<double>(q, Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, a, b),
      Error);
}

// ---------------------------------------------------------------------------
// ArgCheck unit behaviour
// ---------------------------------------------------------------------------

TEST(ArgCheck, ReportsFirstOffenderAndCount) {
  Queue& q = test_queue();
  const std::vector<int> n{4, -1, 8, -2};
  const ArgRule rules[] = {{ArgRule::Kind::NonNegative, n, {}, 3, "n"}};
  std::vector<int> info(4, 0);
  const auto report = check_args(q.device(), rules, info);
  EXPECT_EQ(report.violations, 2);
  EXPECT_EQ(report.first_matrix, 1);
  EXPECT_EQ(report.first_argument, 3);
  EXPECT_EQ(info, (std::vector<int>{0, -3, 0, -3}));
}

TEST(ArgCheck, CleanMetadataPasses) {
  Queue& q = test_queue();
  const std::vector<int> n{4, 5}, lda{4, 8};
  const ArgRule rules[] = {
      {ArgRule::Kind::NonNegative, n, {}, 1, "n"},
      {ArgRule::Kind::AtLeastOther, lda, n, 2, "lda"},
  };
  const auto report = check_args(q.device(), rules);
  EXPECT_TRUE(report.ok());
  EXPECT_NO_THROW(require_args_ok(report, "test"));
}

TEST(ArgCheck, LaunchesADeviceSweep) {
  Queue q2(sim::DeviceSpec::k40c(), sim::ExecMode::TimingOnly);
  const std::vector<int> n(5000, 3);
  const ArgRule rules[] = {{ArgRule::Kind::NonNegative, n, {}, 1, "n"}};
  check_args(q2.device(), rules);
  EXPECT_EQ(q2.device().timeline().count_with_prefix("aux_check_args"), 1u);
}

}  // namespace
