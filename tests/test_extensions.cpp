// Tests for the paper's announced extensions (§V): vbatched LU and QR, and
// the vbatched solve routines (potrs/posv).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vbatch/blas/blas.hpp"
#include "vbatch/core/geqrf_vbatched.hpp"
#include "vbatch/core/getrf_vbatched.hpp"
#include "vbatch/core/potrs_vbatched.hpp"
#include "vbatch/core/size_dist.hpp"

namespace {

using namespace vbatch;

// ---------------------------------------------------------------------------
// LU
// ---------------------------------------------------------------------------

class GetrfVbatchedTest : public ::testing::TestWithParam<int> {};

TEST_P(GetrfVbatchedTest, ResidualsSmallAcrossRandomBatch) {
  const int nmax = GetParam();
  Queue q;
  Rng rng(61);
  auto sizes = uniform_sizes(rng, 25, nmax);
  Batch<double> batch(q, sizes);
  if (q.full()) {
    for (int i = 0; i < batch.count(); ++i) {
      const int n = sizes[static_cast<std::size_t>(i)];
      fill_general(rng, batch.matrix(i).data(), n, n, batch.ldas()[static_cast<std::size_t>(i)]);
    }
  }
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  PivotArrays ipiv(q, sizes);
  const auto r = getrf_vbatched<double>(q, batch, ipiv);
  EXPECT_GT(r.gflops(), 0.0);

  for (int i = 0; i < batch.count(); ++i) {
    ASSERT_EQ(batch.info()[static_cast<std::size_t>(i)], 0) << "matrix " << i;
    const int n = sizes[static_cast<std::size_t>(i)];
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    const double res = blas::getrf_residual<double>(orig, batch.matrix(i), ipiv.pivots(i));
    EXPECT_LT(res, 1e-12) << "matrix " << i << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(MaxSizes, GetrfVbatchedTest, ::testing::Values(20, 60, 100));

TEST(GetrfVbatched, MatchesReferenceFactorsExactly) {
  Queue q;
  Rng rng(67);
  std::vector<int> sizes{48, 70};
  Batch<double> batch(q, sizes);
  for (int i = 0; i < batch.count(); ++i) {
    fill_general(rng, batch.matrix(i).data(), sizes[static_cast<std::size_t>(i)],
                 sizes[static_cast<std::size_t>(i)], sizes[static_cast<std::size_t>(i)]);
  }
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  PivotArrays ipiv(q, sizes);
  getrf_vbatched<double>(q, batch, ipiv, {.panel_nb = 32});

  for (int i = 0; i < batch.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    std::vector<int> ref_piv(static_cast<std::size_t>(n));
    MatrixView<double> ref(originals[static_cast<std::size_t>(i)].data(), n, n, n);
    ASSERT_EQ(blas::getrf<double>(ref, ref_piv, 32), 0);
    const auto piv = ipiv.pivots(i);
    for (int k = 0; k < n; ++k) EXPECT_EQ(piv[static_cast<std::size_t>(k)], ref_piv[static_cast<std::size_t>(k)]);
    auto a = batch.matrix(i);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) EXPECT_NEAR(a(r, c), ref(r, c), 1e-11);
  }
}

TEST(GetrfVbatched, SingularMatrixFlagged) {
  Queue q;
  std::vector<int> sizes{8, 8};
  Batch<double> batch(q, sizes);
  Rng rng(71);
  fill_general(rng, batch.matrix(0).data(), 8, 8, 8);
  // Matrix 1 is rank deficient (all ones).
  auto m1 = batch.matrix(1);
  for (int c = 0; c < 8; ++c)
    for (int r = 0; r < 8; ++r) m1(r, c) = 1.0;

  PivotArrays ipiv(q, sizes);
  getrf_vbatched<double>(q, batch, ipiv);
  EXPECT_EQ(batch.info()[0], 0);
  EXPECT_GT(batch.info()[1], 0);
}

TEST(GetrsVbatched, SolvesAgainstKnownSolutions) {
  Queue q;
  Rng rng(91);
  std::vector<int> sizes{14, 33, 27};
  std::vector<int> nrhs{2, 1, 3};
  Batch<double> a(q, sizes);
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    fill_general(rng, a.matrix(i).data(), n, n, n);
  }
  std::vector<std::vector<double>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  RectBatch<double> b(q, sizes, nrhs);
  std::vector<std::vector<double>> x_true;
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int r = nrhs[static_cast<std::size_t>(i)];
    std::vector<double> x(static_cast<std::size_t>(n * r));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    ConstMatrixView<double> av(aorig[static_cast<std::size_t>(i)].data(), n, n, n);
    ConstMatrixView<double> xv(x.data(), n, r, n);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, xv, 0.0, b.matrix(i));
    x_true.push_back(std::move(x));
  }

  PivotArrays ipiv(q, sizes);
  getrf_vbatched<double>(q, a, ipiv);
  const auto r = getrs_vbatched<double>(q, a, ipiv, b);
  EXPECT_GT(r.seconds, 0.0);

  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int rr = nrhs[static_cast<std::size_t>(i)];
    auto bx = b.matrix(i);
    for (int c = 0; c < rr; ++c)
      for (int row = 0; row < n; ++row)
        EXPECT_NEAR(bx(row, c),
                    x_true[static_cast<std::size_t>(i)][static_cast<std::size_t>(row + c * n)],
                    1e-8)
            << "matrix " << i;
  }
}

TEST(GetrsVbatched, SkipsSingularMatrices) {
  Queue q;
  Rng rng(93);
  std::vector<int> sizes{10, 10};
  std::vector<int> nrhs{1, 1};
  Batch<double> a(q, sizes);
  fill_general(rng, a.matrix(0).data(), 10, 10, 10);
  auto m1 = a.matrix(1);
  for (int c = 0; c < 10; ++c)
    for (int r = 0; r < 10; ++r) m1(r, c) = 1.0;  // singular
  RectBatch<double> b(q, sizes, nrhs);
  b.fill_general(rng);
  auto b1_before = b.copy_matrix(1);

  PivotArrays ipiv(q, sizes);
  getrf_vbatched<double>(q, a, ipiv);
  ASSERT_GT(a.info()[1], 0);
  getrs_vbatched<double>(q, a, ipiv, b);
  EXPECT_EQ(b.copy_matrix(1), b1_before);
}

// ---------------------------------------------------------------------------
// QR
// ---------------------------------------------------------------------------

class GeqrfVbatchedTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeqrfVbatchedTest, ResidualsSmallAcrossRectangularBatch) {
  const auto [count, nmax] = GetParam();
  Queue q;
  Rng rng(73);
  auto cols = uniform_sizes(rng, count, nmax);
  std::vector<int> rows(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i)
    rows[i] = cols[i] + static_cast<int>(rng.uniform_int(0, nmax / 2));  // m >= n

  RectBatch<double> batch(q, rows, cols);
  batch.fill_general(rng);
  std::vector<std::vector<double>> originals;
  for (int i = 0; i < batch.count(); ++i) originals.push_back(batch.copy_matrix(i));

  std::vector<int> mn(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) mn[i] = std::min(rows[i], cols[i]);
  TauArrays<double> tau(q, mn);
  const auto r = geqrf_vbatched<double>(q, batch, tau);
  EXPECT_GT(r.gflops(), 0.0);

  for (int i = 0; i < batch.count(); ++i) {
    const int m = rows[static_cast<std::size_t>(i)];
    const int n = cols[static_cast<std::size_t>(i)];
    ConstMatrixView<double> orig(originals[static_cast<std::size_t>(i)].data(), m, n, m);
    const double res = blas::geqrf_residual<double>(orig, batch.matrix(i), tau.tau(i));
    EXPECT_LT(res, 1e-12) << "matrix " << i << " m=" << m << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeqrfVbatchedTest,
                         ::testing::Values(std::tuple{15, 24}, std::tuple{20, 60},
                                           std::tuple{10, 90}));

TEST(OrmqrVbatched, QtQisIdentityAction) {
  // Applying Qᵀ then checking ‖Qᵀb‖ == ‖b‖ (orthogonality preserved).
  Queue q;
  Rng rng(95);
  std::vector<int> m{20, 45}, n{8, 12}, nrhs{3, 2};
  RectBatch<double> a(q, m, n);
  a.fill_general(rng);
  std::vector<int> mn = n;
  TauArrays<double> tau(q, mn);
  geqrf_vbatched<double>(q, a, tau);

  RectBatch<double> c(q, m, nrhs);
  c.fill_general(rng);
  std::vector<double> norms_before;
  for (int i = 0; i < c.count(); ++i) {
    auto v = c.matrix(i);
    norms_before.push_back(blas::norm_fro<double>(
        ConstMatrixView<double>(v.data(), v.rows(), v.cols(), v.ld())));
  }
  ormqr_vbatched<double>(q, a, tau, c);
  for (int i = 0; i < c.count(); ++i) {
    auto v = c.matrix(i);
    const double after = blas::norm_fro<double>(
        ConstMatrixView<double>(v.data(), v.rows(), v.cols(), v.ld()));
    EXPECT_NEAR(after, norms_before[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(GeqrsVbatched, RecoversExactSolutions) {
  // Consistent systems (b = A·x): least squares recovers x exactly.
  Queue q;
  Rng rng(97);
  std::vector<int> m{24, 50, 15}, n{6, 20, 15}, nrhs{2, 1, 3};
  RectBatch<double> a(q, m, n);
  a.fill_general(rng);
  // Boost the diagonal so R is well conditioned.
  for (int i = 0; i < a.count(); ++i) {
    auto av = a.matrix(i);
    for (index_t d = 0; d < av.cols(); ++d) av(d, d) += 3.0;
  }
  std::vector<std::vector<double>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  RectBatch<double> b(q, m, nrhs);
  std::vector<std::vector<double>> x_true;
  for (int i = 0; i < a.count(); ++i) {
    const int mi = m[static_cast<std::size_t>(i)];
    const int ni = n[static_cast<std::size_t>(i)];
    const int ri = nrhs[static_cast<std::size_t>(i)];
    std::vector<double> x(static_cast<std::size_t>(ni) * ri);
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    ConstMatrixView<double> av(aorig[static_cast<std::size_t>(i)].data(), mi, ni, mi);
    ConstMatrixView<double> xv(x.data(), ni, ri, ni);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, xv, 0.0, b.matrix(i));
    x_true.push_back(std::move(x));
  }

  std::vector<int> mn = n;
  TauArrays<double> tau(q, mn);
  geqrf_vbatched<double>(q, a, tau);
  const auto r = geqrs_vbatched<double>(q, a, tau, b);
  EXPECT_GT(r.seconds, 0.0);

  for (int i = 0; i < a.count(); ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    const int ri = nrhs[static_cast<std::size_t>(i)];
    auto x = b.matrix(i);
    for (int c = 0; c < ri; ++c)
      for (int row = 0; row < ni; ++row)
        EXPECT_NEAR(x(row, c),
                    x_true[static_cast<std::size_t>(i)][static_cast<std::size_t>(row + c * ni)],
                    1e-9)
            << "matrix " << i;
  }
}

TEST(GeqrsVbatched, MinimizesResidualForOverdetermined) {
  // Inconsistent system: the residual must be orthogonal to range(A).
  Queue q;
  Rng rng(99);
  std::vector<int> m{30}, n{5}, nrhs{1};
  RectBatch<double> a(q, m, n);
  a.fill_general(rng);
  auto aorig = a.copy_matrix(0);
  RectBatch<double> b(q, m, nrhs);
  b.fill_general(rng);
  auto borig = b.copy_matrix(0);

  std::vector<int> mn = n;
  TauArrays<double> tau(q, mn);
  geqrf_vbatched<double>(q, a, tau);
  geqrs_vbatched<double>(q, a, tau, b);

  // r = b - A x must satisfy Aᵀ r = 0.
  ConstMatrixView<double> av(aorig.data(), 30, 5, 30);
  auto x = b.matrix(0);
  std::vector<double> res = borig;
  for (int row = 0; row < 30; ++row)
    for (int c = 0; c < 5; ++c) res[static_cast<std::size_t>(row)] -= av(row, c) * x(c, 0);
  for (int c = 0; c < 5; ++c) {
    double dot = 0.0;
    for (int row = 0; row < 30; ++row) dot += av(row, c) * res[static_cast<std::size_t>(row)];
    EXPECT_NEAR(dot, 0.0, 1e-10);
  }
}

// ---------------------------------------------------------------------------
// potrs / posv
// ---------------------------------------------------------------------------

TEST(PotrsVbatched, SolvesAgainstKnownSolutions) {
  Queue q;
  Rng rng(79);
  std::vector<int> sizes{12, 30, 21};
  std::vector<int> nrhs{1, 4, 2};
  Batch<double> a(q, sizes);
  a.fill_spd(rng);
  std::vector<std::vector<double>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  // Build B = A · X_true.
  RectBatch<double> b(q, sizes, nrhs);
  std::vector<std::vector<double>> x_true;
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int r = nrhs[static_cast<std::size_t>(i)];
    std::vector<double> x(static_cast<std::size_t>(n * r));
    for (auto& v : x) v = rng.uniform(-1.0, 1.0);
    ConstMatrixView<double> av(aorig[static_cast<std::size_t>(i)].data(), n, n, n);
    ConstMatrixView<double> xv(x.data(), n, r, n);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av, xv, 0.0, b.matrix(i));
    x_true.push_back(std::move(x));
  }

  potrf_vbatched<double>(q, Uplo::Lower, a);
  const auto r = potrs_vbatched<double>(q, Uplo::Lower, a, b);
  EXPECT_GT(r.seconds, 0.0);

  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int rr = nrhs[static_cast<std::size_t>(i)];
    auto bx = b.matrix(i);
    for (int c = 0; c < rr; ++c)
      for (int row = 0; row < n; ++row)
        EXPECT_NEAR(bx(row, c),
                    x_true[static_cast<std::size_t>(i)][static_cast<std::size_t>(row + c * n)],
                    1e-8);
  }
}

TEST(PosvVbatched, FactorsAndSolvesInOneCall) {
  Queue q;
  Rng rng(83);
  std::vector<int> sizes{16, 25};
  std::vector<int> nrhs{2, 2};
  Batch<double> a(q, sizes);
  a.fill_spd(rng);
  std::vector<std::vector<double>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  RectBatch<double> b(q, sizes, nrhs);
  b.fill_general(rng);
  std::vector<std::vector<double>> borig;
  for (int i = 0; i < b.count(); ++i) borig.push_back(b.copy_matrix(i));

  const auto r = posv_vbatched<double>(q, Uplo::Lower, a, b);
  EXPECT_GT(r.flops, 0.0);

  // Check residual ‖A·X − B‖ per matrix.
  for (int i = 0; i < a.count(); ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    ConstMatrixView<double> av(aorig[static_cast<std::size_t>(i)].data(), n, n, n);
    auto x = b.matrix(i);
    std::vector<double> ax(static_cast<std::size_t>(n * 2));
    MatrixView<double> axv(ax.data(), n, 2, n);
    blas::gemm<double>(Trans::NoTrans, Trans::NoTrans, 1.0, av,
                       ConstMatrixView<double>(x.data(), n, 2, x.ld()), 0.0, axv);
    for (int c = 0; c < 2; ++c)
      for (int row = 0; row < n; ++row)
        EXPECT_NEAR(axv(row, c),
                    borig[static_cast<std::size_t>(i)][static_cast<std::size_t>(row + c * n)],
                    1e-8);
  }
}

TEST(LauumReference, LowerMatchesExplicitProduct) {
  Rng rng(201);
  const int n = 13;
  std::vector<double> l(static_cast<std::size_t>(n * n), 0.0);
  MatrixView<double> lv(l.data(), n, n, n);
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) lv(i, j) = rng.uniform(0.5, 2.0);
  auto work = l;
  MatrixView<double> wv(work.data(), n, n, n);
  blas::lauum<double>(Uplo::Lower, wv);
  // Expected: (LᵀL)(i, j) for i >= j.
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) {
      double sum = 0.0;
      for (int k = i; k < n; ++k) sum += lv(k, i) * lv(k, j);
      EXPECT_NEAR(wv(i, j), sum, 1e-12) << i << "," << j;
    }
}

TEST(LauumReference, UpperMatchesExplicitProduct) {
  Rng rng(203);
  const int n = 11;
  std::vector<double> u(static_cast<std::size_t>(n * n), 0.0);
  MatrixView<double> uv(u.data(), n, n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) uv(i, j) = rng.uniform(0.5, 2.0);
  auto work = u;
  MatrixView<double> wv(work.data(), n, n, n);
  blas::lauum<double>(Uplo::Upper, wv);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= j; ++i) {
      double sum = 0.0;
      for (int k = j; k < n; ++k) sum += uv(i, k) * uv(j, k);
      EXPECT_NEAR(wv(i, j), sum, 1e-12) << i << "," << j;
    }
}

class PotriVbatchedTest : public ::testing::TestWithParam<Uplo> {};

TEST_P(PotriVbatchedTest, ProducesTrueInverses) {
  const Uplo uplo = GetParam();
  Queue q;
  Rng rng(207);
  std::vector<int> sizes{9, 26, 17, 1};
  Batch<double> a(q, sizes);
  a.fill_spd(rng);
  std::vector<std::vector<double>> aorig;
  for (int i = 0; i < a.count(); ++i) aorig.push_back(a.copy_matrix(i));

  potrf_vbatched<double>(q, uplo, a);
  const auto r = potri_vbatched<double>(q, uplo, a);
  EXPECT_GT(r.seconds, 0.0);

  // A · A⁻¹ == I using the symmetric completion of the inverse triangle.
  for (int idx = 0; idx < a.count(); ++idx) {
    const int n = sizes[static_cast<std::size_t>(idx)];
    auto inv_tri = a.matrix(idx);
    std::vector<double> inv(static_cast<std::size_t>(n) * n);
    MatrixView<double> iv(inv.data(), n, n, n);
    for (int c = 0; c < n; ++c)
      for (int rr = 0; rr < n; ++rr) {
        const bool in_tri = uplo == Uplo::Lower ? rr >= c : rr <= c;
        iv(rr, c) = in_tri ? inv_tri(rr, c) : inv_tri(c, rr);
      }
    ConstMatrixView<double> av(aorig[static_cast<std::size_t>(idx)].data(), n, n, n);
    for (int c = 0; c < n; ++c)
      for (int rr = 0; rr < n; ++rr) {
        double sum = 0.0;
        for (int k = 0; k < n; ++k) sum += av(rr, k) * iv(k, c);
        EXPECT_NEAR(sum, rr == c ? 1.0 : 0.0, 1e-9) << "matrix " << idx;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Uplos, PotriVbatchedTest,
                         ::testing::Values(Uplo::Lower, Uplo::Upper));

TEST(PotriVbatched, SkipsFailedFactorizations) {
  Queue q;
  Rng rng(209);
  std::vector<int> sizes{8, 8};
  Batch<double> a(q, sizes);
  a.fill_spd(rng);
  a.matrix(1)(4, 4) = -1e9;
  potrf_vbatched<double>(q, Uplo::Lower, a);
  ASSERT_GT(a.info()[1], 0);
  auto before = a.copy_matrix(1);
  potri_vbatched<double>(q, Uplo::Lower, a);
  EXPECT_EQ(a.copy_matrix(1), before);
}

TEST(PotrsVbatched, SkipsFailedFactorizations) {
  Queue q;
  Rng rng(89);
  std::vector<int> sizes{10, 10};
  std::vector<int> nrhs{1, 1};
  Batch<double> a(q, sizes);
  a.fill_spd(rng);
  a.matrix(1)(5, 5) = -1e9;  // matrix 1 will fail
  RectBatch<double> b(q, sizes, nrhs);
  b.fill_general(rng);
  auto b1_before = b.copy_matrix(1);

  potrf_vbatched<double>(q, Uplo::Lower, a);
  ASSERT_GT(a.info()[1], 0);
  potrs_vbatched<double>(q, Uplo::Lower, a, b);
  // The failed matrix's rhs must be left untouched.
  EXPECT_EQ(b.copy_matrix(1), b1_before);
}

}  // namespace
